//! Interleaved multi-CPU execution over one shared memory system.
//!
//! Figure 8 of the paper runs MatMult on both processors of each node at
//! once; contention has to emerge from the two instruction streams hitting
//! the bus at overlapping times. [`run_smp`] steps whichever CPU is
//! earliest in simulated time, one instruction at a time, so accesses from
//! the two cores interleave realistically on the shared
//! [`MemorySystem`]'s resources.

use crate::config::CpuConfig;
use crate::engine::{Cpu, RunResult};
use pm_isa::Trace;
use pm_mem::MemorySystem;
use pm_sim::time::Time;

/// Runs one trace per CPU concurrently on a shared memory system.
///
/// Returns one [`RunResult`] per CPU. CPUs with exhausted traces drop out;
/// the others continue.
///
/// # Panics
///
/// Panics if the number of configs/traces differs or exceeds the memory
/// system's port count, or if no CPUs are given.
///
/// # Examples
///
/// ```
/// use pm_cpu::{run_smp, CpuConfig};
/// use pm_isa::TraceBuilder;
/// use pm_mem::{HierarchyConfig, MemorySystem};
///
/// let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(2));
/// let make = || {
///     let mut tb = TraceBuilder::new();
///     for i in 0..64 {
///         tb.load(i * 64, 8);
///     }
///     tb.finish()
/// };
/// let results = run_smp(
///     &[CpuConfig::mpc620(), CpuConfig::mpc620()],
///     vec![make(), make()],
///     &mut mem,
/// );
/// assert_eq!(results.len(), 2);
/// ```
pub fn run_smp(
    configs: &[CpuConfig],
    traces: Vec<Trace>,
    mem: &mut MemorySystem,
) -> Vec<RunResult> {
    run_smp_at(configs, traces, mem, Time::ZERO)
}

/// Like [`run_smp`], but starting no earlier than `start` — used to chain
/// phases (e.g. transpose, then multiply) over one warm memory system.
pub fn run_smp_at(
    configs: &[CpuConfig],
    traces: Vec<Trace>,
    mem: &mut MemorySystem,
    start: Time,
) -> Vec<RunResult> {
    assert!(!configs.is_empty(), "need at least one CPU");
    assert_eq!(configs.len(), traces.len(), "one trace per CPU is required");
    assert!(
        configs.len() <= mem.config().cpus,
        "more CPUs than memory ports"
    );

    struct Lane {
        cpu: Cpu,
        instrs: std::vec::IntoIter<pm_isa::Instr>,
        result: RunResult,
        done: bool,
    }

    let mut lanes: Vec<Lane> = configs
        .iter()
        .zip(traces)
        .map(|(cfg, trace)| {
            let mut cpu = Cpu::new(cfg.clone());
            cpu.start_at(start);
            Lane {
                cpu,
                instrs: trace.into_iter(),
                result: RunResult::default(),
                done: false,
            }
        })
        .collect();

    loop {
        // Pick the live lane furthest behind in simulated time.
        let next = lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.done)
            .min_by_key(|(_, l)| l.cpu.now())
            .map(|(i, _)| i);
        let Some(i) = next else { break };
        let lane = &mut lanes[i];
        match lane.instrs.next() {
            Some(instr) => {
                lane.cpu.step(&instr, mem, i, &mut lane.result);
            }
            None => {
                lane.done = true;
                lane.result.finished_at = lane.cpu.now();
                lane.result.elapsed = lane.cpu.now().since(start);
                lane.result.cycles = lane.cpu.config().clock.cycles_in(lane.result.elapsed);
                lane.result.mispredicts = lane.cpu.predictor().mispredicts();
            }
        }
    }

    lanes.into_iter().map(|l| l.result).collect()
}

/// Dual-processor speedup: time of the longest single run divided by the
/// time of the longest lane in the SMP run.
///
/// This matches the paper's Figure 8 metric: the same total work is either
/// run on one processor, or split in half across both.
pub fn speedup(single: &RunResult, smp: &[RunResult]) -> f64 {
    let smp_time = smp
        .iter()
        .map(|r| r.elapsed.as_secs_f64())
        .fold(0.0f64, f64::max);
    if smp_time == 0.0 {
        0.0
    } else {
        single.elapsed.as_secs_f64() / smp_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_isa::TraceBuilder;
    use pm_mem::HierarchyConfig;

    /// A cache-resident FP kernel: both CPUs work out of their own L1s.
    fn fp_kernel(base: u64, n: usize) -> Trace {
        let mut tb = TraceBuilder::new();
        let a = tb.load(base, 8);
        let b = tb.load(base + 8, 8);
        let mut acc = tb.reg();
        for _ in 0..n {
            acc = tb.fmadd(a, b, acc);
        }
        tb.store(acc, base + 16, 8);
        tb.finish()
    }

    /// A memory-streaming kernel touching `lines` distinct lines.
    fn stream_kernel(base: u64, lines: u64) -> Trace {
        let mut tb = TraceBuilder::new();
        for i in 0..lines {
            tb.load(base + i * 64, 8);
        }
        tb.finish()
    }

    #[test]
    fn cache_resident_work_scales_perfectly_on_620() {
        let mut mem1 = MemorySystem::new(HierarchyConfig::mpc620_node(2));
        let single = run_smp(&[CpuConfig::mpc620()], vec![fp_kernel(0, 2000)], &mut mem1);

        let mut mem2 = MemorySystem::new(HierarchyConfig::mpc620_node(2));
        let both = run_smp(
            &[CpuConfig::mpc620(), CpuConfig::mpc620()],
            vec![fp_kernel(0, 1000), fp_kernel(1 << 16, 1000)],
            &mut mem2,
        );
        let s = speedup(&single[0], &both);
        assert!(
            (1.8..=2.1).contains(&s),
            "620 cache-resident speedup {s:.2} should be ~2"
        );
    }

    #[test]
    fn streaming_contends_more_on_shared_bus() {
        // The same disjoint streaming load on PowerMANNA vs the Pentium II
        // board: the non-split shared FSB loses more than the ADSP node.
        let lines = 2048u64;

        let run_machine = |mk_mem: &dyn Fn(usize) -> MemorySystem, cfg: &CpuConfig| -> f64 {
            let mut m1 = mk_mem(2);
            let single = run_smp(
                std::slice::from_ref(cfg),
                vec![stream_kernel(0, lines)],
                &mut m1,
            );
            let mut m2 = mk_mem(2);
            let both = run_smp(
                &[cfg.clone(), cfg.clone()],
                vec![
                    stream_kernel(0, lines / 2),
                    stream_kernel(1 << 24, lines / 2),
                ],
                &mut m2,
            );
            speedup(&single[0], &both)
        };

        let s_pm = run_machine(
            &|c| MemorySystem::new(HierarchyConfig::mpc620_node(c)),
            &CpuConfig::mpc620(),
        );
        let s_pc = run_machine(
            &|c| MemorySystem::new(HierarchyConfig::pentium_node(c, 180.0, 60.0)),
            &CpuConfig::pentium_ii(180.0),
        );
        assert!(
            s_pm > s_pc,
            "PowerMANNA streaming speedup {s_pm:.2} should beat Pentium {s_pc:.2}"
        );
    }

    #[test]
    fn results_are_deterministic() {
        let run = || {
            let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(2));
            run_smp(
                &[CpuConfig::mpc620(), CpuConfig::mpc620()],
                vec![stream_kernel(0, 256), fp_kernel(1 << 20, 256)],
                &mut mem,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one trace per CPU")]
    fn rejects_mismatched_lanes() {
        let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(2));
        run_smp(&[CpuConfig::mpc620()], vec![], &mut mem);
    }

    #[test]
    #[should_panic(expected = "more CPUs than memory ports")]
    fn rejects_too_many_cpus() {
        let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(1));
        run_smp(
            &[CpuConfig::mpc620(), CpuConfig::mpc620()],
            vec![Trace::new(), Trace::new()],
            &mut mem,
        );
    }

    #[test]
    fn empty_traces_finish_immediately() {
        let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(2));
        let r = run_smp(
            &[CpuConfig::mpc620(), CpuConfig::mpc620()],
            vec![Trace::new(), Trace::new()],
            &mut mem,
        );
        assert!(r.iter().all(|x| x.instrs == 0));
    }
}
