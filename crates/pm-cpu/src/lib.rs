//! Superscalar CPU timing models for the PowerMANNA reproduction.
//!
//! The MPC620 "is capable of issuing four instructions simultaneously. Its
//! six execution units can operate in parallel … rename buffers,
//! reservation stations, dynamic branch prediction and completion unit
//! increase instruction throughput, guarantee in-order completion" (§2).
//! For the evaluation, two further properties matter most:
//!
//! * the FPU pipelines fused multiply-adds (MatMult's inner loop), and
//! * the chip "does not support load pipelining" (§5.1.1) — at most one
//!   load miss is outstanding, which is why PowerMANNA cannot exploit its
//!   640 Mbyte/s memory in the naive MatMult and the HINT memory region.
//!
//! [`Cpu`] executes an abstract instruction trace (`pm-isa`) against a
//! shared memory system (`pm-mem`), accounting cycles with per-unit
//! pipelines, a 2-bit branch predictor, a reorder window with in-order
//! completion, rename-buffer pressure, and the configured load/store unit
//! behaviour. [`smp::run_smp`] interleaves several CPUs over one
//! [`pm_mem::MemorySystem`] so bus contention emerges naturally.
//!
//! # Examples
//!
//! ```
//! use pm_cpu::{Cpu, CpuConfig};
//! use pm_isa::TraceBuilder;
//! use pm_mem::{HierarchyConfig, MemorySystem};
//!
//! let mut tb = TraceBuilder::new();
//! let a = tb.load(0, 8);
//! let b = tb.load(64, 8);
//! let c = tb.fadd(a, b);
//! tb.store(c, 128, 8);
//!
//! let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(1));
//! let mut cpu = Cpu::new(CpuConfig::mpc620());
//! let r = cpu.execute(tb.finish(), &mut mem, 0);
//! assert_eq!(r.instrs, 4);
//! assert!(r.cycles > 0);
//! ```

pub mod config;
pub mod engine;
pub mod predictor;
pub mod smp;

pub use config::{CpuConfig, UnitTiming};
pub use engine::{Cpu, RunResult};
pub use predictor::BranchPredictor;
pub use smp::{run_smp, run_smp_at};
