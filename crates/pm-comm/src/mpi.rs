//! A small MPI-like layer over the PowerMANNA communication stack (§4).
//!
//! "Interprocess communication is supported by both the PVM and MPI
//! message-passing libraries. To obtain maximum benefits from the
//! low-latency communication system, an optimized implementation of MPI
//! offers user-level communication…"
//!
//! [`MpiWorld`] models an SPMD job: one rank per node, per-rank virtual
//! clocks, point-to-point timing from the measured [`crate::driver`]
//! latencies (hop-aware: intra-cluster pairs route through one crossbar,
//! inter-cluster pairs through three), and the classic logarithmic
//! collective algorithms on top.

use crate::config::CommConfig;
use crate::driver;
use pm_sim::time::{Duration, Time};

/// Where a pair of ranks sits relative to each other in the machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// Same eight-node cluster: one crossbar between them.
    IntraCluster,
    /// Different clusters of the 256-processor system: three crossbars.
    InterCluster,
}

/// An SPMD world of `size` ranks over the PowerMANNA network.
///
/// The model keeps a virtual clock per rank; point-to-point operations
/// advance the participants, collectives run their communication rounds
/// and return when every rank has finished. Latencies are *measured*
/// (the same driver simulation behind Figures 9–11), memoised per
/// message size.
///
/// # Examples
///
/// ```
/// use pm_comm::config::CommConfig;
/// use pm_comm::mpi::MpiWorld;
///
/// let mut world = MpiWorld::new(8, CommConfig::powermanna());
/// let t = world.barrier();
/// assert!(t.as_us_f64() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct MpiWorld {
    config: CommConfig,
    clocks: Vec<Time>,
    /// Ranks per cluster (8 on PowerMANNA); pairs in different clusters
    /// pay the three-crossbar path.
    ranks_per_cluster: usize,
    latency_cache: std::collections::BTreeMap<(u32, bool), Duration>,
    messages: u64,
    bytes: u64,
}

impl MpiWorld {
    /// Creates a world of `size` ranks with the default eight ranks per
    /// cluster.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize, config: CommConfig) -> Self {
        assert!(size > 0, "world needs at least one rank");
        MpiWorld {
            config,
            clocks: vec![Time::ZERO; size],
            ranks_per_cluster: 8,
            latency_cache: std::collections::BTreeMap::new(),
            messages: 0,
            bytes: 0,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.clocks.len()
    }

    /// Virtual clock of one rank.
    pub fn clock(&self, rank: usize) -> Time {
        self.clocks[rank]
    }

    /// The latest clock across all ranks (job completion time).
    pub fn finish_time(&self) -> Time {
        self.clocks.iter().copied().fold(Time::ZERO, Time::max)
    }

    /// Point-to-point messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Payload bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Placement of a rank pair.
    pub fn placement(&self, a: usize, b: usize) -> Placement {
        if a / self.ranks_per_cluster == b / self.ranks_per_cluster {
            Placement::IntraCluster
        } else {
            Placement::InterCluster
        }
    }

    /// One-way latency for `bytes` between `from` and `to`, measured by
    /// the driver simulation and memoised.
    pub fn p2p_latency(&mut self, from: usize, to: usize, bytes: u32) -> Duration {
        let far = self.placement(from, to) == Placement::InterCluster;
        if let Some(&d) = self.latency_cache.get(&(bytes, far)) {
            return d;
        }
        let cfg = if far {
            self.config.with_hops(3)
        } else {
            self.config
        };
        let d = driver::one_way_latency(&cfg, bytes);
        self.latency_cache.insert((bytes, far), d);
        d
    }

    /// Sends `bytes` from `from` to `to`: the receiver's clock advances
    /// to the delivery instant; the sender is busy for its software send
    /// overhead. Returns the delivery time.
    ///
    /// # Panics
    ///
    /// Panics if a rank is out of range or `from == to`.
    pub fn send(&mut self, from: usize, to: usize, bytes: u32) -> Time {
        assert!(from < self.size() && to < self.size(), "rank out of range");
        assert_ne!(from, to, "self-send");
        let lat = self.p2p_latency(from, to, bytes);
        let start = self.clocks[from];
        let deliver = start + lat;
        self.clocks[from] = start + self.config.sw_send;
        self.clocks[to] = self.clocks[to].max(deliver);
        self.messages += 1;
        self.bytes += u64::from(bytes);
        deliver
    }

    /// Dissemination barrier: ceil(log2 n) rounds, each rank exchanging
    /// an 8-byte token with the rank `2^k` ahead. Returns the elapsed
    /// time from the latest entry to the last exit.
    pub fn barrier(&mut self) -> Duration {
        let n = self.size();
        if n == 1 {
            return Duration::ZERO;
        }
        let entry = self.finish_time();
        // Synchronise the start (everyone must arrive).
        for c in &mut self.clocks {
            *c = entry;
        }
        let mut k = 1usize;
        while k < n {
            // Round: i sends to (i + k) % n; all exchanges overlap.
            let snapshot = self.clocks.clone();
            for (i, &entry_clock) in snapshot.iter().enumerate() {
                let peer = (i + k) % n;
                let lat = self.p2p_latency(i, peer, 8);
                let deliver = entry_clock + lat;
                self.clocks[peer] = self.clocks[peer].max(deliver);
                self.messages += 1;
                self.bytes += 8;
            }
            // A rank leaves the round when it has both sent and received.
            let round_end = self.clocks.iter().copied().fold(Time::ZERO, Time::max);
            let _ = round_end;
            k *= 2;
        }
        // Conservative: everyone leaves at the slowest rank's time (the
        // dissemination barrier guarantees this bound).
        let exit = self.finish_time();
        for c in &mut self.clocks {
            *c = exit;
        }
        exit.since(entry)
    }

    /// Binomial-tree broadcast of `bytes` from `root`. Returns elapsed
    /// time until the last rank holds the data.
    pub fn bcast(&mut self, root: usize, bytes: u32) -> Duration {
        assert!(root < self.size(), "rank out of range");
        let n = self.size();
        let start = self.finish_time();
        for c in &mut self.clocks {
            *c = start;
        }
        // Ranks are renumbered so the root is 0; in round k, ranks
        // < 2^k with the data send to rank + 2^k.
        let mut have = vec![false; n];
        have[root] = true;
        let mut k = 1usize;
        while k < n {
            for v in 0..k.min(n) {
                let src = (root + v) % n;
                let dst_v = v + k;
                if dst_v >= n || !have[src] {
                    continue;
                }
                let dst = (root + dst_v) % n;
                let lat = self.p2p_latency(src, dst, bytes);
                let deliver = self.clocks[src] + lat;
                self.clocks[src] += self.config.sw_send;
                self.clocks[dst] = self.clocks[dst].max(deliver);
                have[dst] = true;
                self.messages += 1;
                self.bytes += u64::from(bytes);
            }
            k *= 2;
        }
        self.finish_time().since(start)
    }

    /// Binomial-tree reduction of `bytes` to `root` (communication time
    /// only; the combine operation is assumed overlapped). Returns the
    /// elapsed time until the root holds the result.
    pub fn reduce(&mut self, root: usize, bytes: u32) -> Duration {
        assert!(root < self.size(), "rank out of range");
        let n = self.size();
        let start = self.finish_time();
        for c in &mut self.clocks {
            *c = start;
        }
        // Mirror of the broadcast tree: leaves send first.
        let mut k = 1usize;
        while k < n {
            k *= 2;
        }
        k /= 2;
        while k >= 1 {
            for v in 0..k {
                let src_v = v + k;
                if src_v >= n {
                    continue;
                }
                let src = (root + src_v) % n;
                let dst = (root + v) % n;
                let lat = self.p2p_latency(src, dst, bytes);
                let deliver = self.clocks[src] + lat;
                self.clocks[src] += self.config.sw_send;
                self.clocks[dst] = self.clocks[dst].max(deliver);
                self.messages += 1;
                self.bytes += u64::from(bytes);
            }
            if k == 1 {
                break;
            }
            k /= 2;
        }
        self.finish_time().since(start)
    }

    /// Allreduce = reduce to rank 0, then broadcast.
    pub fn allreduce(&mut self, bytes: u32) -> Duration {
        self.reduce(0, bytes) + self.bcast(0, bytes)
    }

    /// All-to-all personalised exchange: `n-1` rounds of pairwise
    /// exchanges (the classic ring schedule), `bytes` per pair. Returns
    /// the elapsed time until the slowest rank holds everything.
    pub fn alltoall(&mut self, bytes: u32) -> Duration {
        let n = self.size();
        if n == 1 {
            return Duration::ZERO;
        }
        let start = self.finish_time();
        for c in &mut self.clocks {
            *c = start;
        }
        for round in 1..n {
            let snapshot = self.clocks.clone();
            for (i, &round_clock) in snapshot.iter().enumerate() {
                let peer = (i + round) % n;
                let lat = self.p2p_latency(i, peer, bytes);
                let deliver = round_clock + lat;
                self.clocks[peer] = self.clocks[peer].max(deliver);
                self.messages += 1;
                self.bytes += u64::from(bytes);
            }
            // Ranks synchronise per round (each must send and receive
            // before the ring advances).
            let round_end = self.finish_time();
            for c in &mut self.clocks {
                *c = round_end;
            }
        }
        self.finish_time().since(start)
    }

    /// Nearest-neighbour halo exchange on a 1-D ring: every rank swaps
    /// `bytes` with both neighbours (the SPMD pattern the paper's §6
    /// T3E comparison is about). Returns the elapsed time.
    pub fn halo_exchange(&mut self, bytes: u32) -> Duration {
        let n = self.size();
        if n == 1 {
            return Duration::ZERO;
        }
        let start = self.finish_time();
        for c in &mut self.clocks {
            *c = start;
        }
        let snapshot = self.clocks.clone();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let right = (i + 1) % n;
            let left = (i + n - 1) % n;
            // On a two-rank ring both neighbours are the same rank.
            let peers: &[usize] = if right == left {
                &[right]
            } else {
                &[right, left]
            };
            for &peer in peers {
                if peer == i {
                    continue;
                }
                let lat = self.p2p_latency(i, peer, bytes);
                let deliver = snapshot[i] + self.config.sw_send + lat;
                self.clocks[peer] = self.clocks[peer].max(deliver);
                self.messages += 1;
                self.bytes += u64::from(bytes);
            }
        }
        self.finish_time().since(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CommConfig;

    fn world(n: usize) -> MpiWorld {
        MpiWorld::new(n, CommConfig::powermanna())
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let t2 = world(2).barrier();
        let t8 = world(8).barrier();
        let t64 = world(64).barrier();
        assert!(t2 < t8 && t8 < t64);
        // 64 ranks = 6 rounds vs 3 rounds for 8: about 2x, not 8x.
        let ratio = t64.as_secs_f64() / t8.as_secs_f64();
        assert!(
            (1.3..4.0).contains(&ratio),
            "barrier should scale ~log: ratio {ratio:.2}"
        );
    }

    #[test]
    fn barrier_on_one_rank_is_free() {
        assert_eq!(world(1).barrier(), Duration::ZERO);
    }

    #[test]
    fn bcast_reaches_everyone_in_log_rounds() {
        let mut w = world(16);
        let t = w.bcast(3, 1024);
        assert!(t > Duration::ZERO);
        // 15 transfers for 16 ranks.
        assert_eq!(w.messages(), 15);
        // Log depth: time well below 15 sequential sends.
        let seq = w.p2p_latency(0, 1, 1024) * 15;
        assert!(t < seq);
    }

    #[test]
    fn inter_cluster_costs_more() {
        let mut w = world(16); // ranks 0-7 cluster 0, 8-15 cluster 1
        let near = w.p2p_latency(0, 7, 256);
        let far = w.p2p_latency(0, 8, 256);
        assert!(far > near);
        assert_eq!(w.placement(0, 7), Placement::IntraCluster);
        assert_eq!(w.placement(0, 8), Placement::InterCluster);
    }

    #[test]
    fn send_advances_both_clocks() {
        let mut w = world(4);
        let deliver = w.send(0, 2, 128);
        assert_eq!(w.clock(2), deliver);
        assert!(w.clock(0) > Time::ZERO && w.clock(0) < deliver);
        assert_eq!(w.bytes(), 128);
    }

    #[test]
    fn allreduce_is_reduce_plus_bcast() {
        let mut w1 = world(32);
        let all = w1.allreduce(4096);
        let mut w2 = world(32);
        let sum = w2.reduce(0, 4096) + w2.bcast(0, 4096);
        assert_eq!(all, sum);
    }

    #[test]
    fn reduce_messages_count() {
        let mut w = world(8);
        w.reduce(0, 64);
        assert_eq!(w.messages(), 7);
    }

    #[test]
    fn collectives_deterministic() {
        let mut a = world(24);
        let mut b = world(24);
        assert_eq!(a.barrier(), b.barrier());
        assert_eq!(a.bcast(5, 512), b.bcast(5, 512));
    }

    #[test]
    fn alltoall_grows_linearly_with_ranks() {
        let t8 = world(8).alltoall(1024);
        let t16 = world(16).alltoall(1024);
        // n-1 rounds: roughly doubles.
        let ratio = t16.as_secs_f64() / t8.as_secs_f64();
        assert!((1.5..3.5).contains(&ratio), "alltoall ratio {ratio:.2}");
        assert_eq!(world(1).alltoall(64), Duration::ZERO);
    }

    #[test]
    fn alltoall_message_count() {
        let mut w = world(8);
        w.alltoall(64);
        assert_eq!(w.messages(), 8 * 7);
    }

    #[test]
    fn halo_exchange_is_near_constant_in_ranks() {
        let t8 = world(8).halo_exchange(4096);
        let t64 = world(64).halo_exchange(4096);
        // Nearest-neighbour: independent of rank count up to the
        // intra/inter-cluster latency difference.
        let ratio = t64.as_secs_f64() / t8.as_secs_f64();
        assert!(ratio < 1.6, "halo should not scale with ranks: {ratio:.2}");
    }

    #[test]
    fn halo_on_two_ranks_swaps_once_each_way() {
        let mut w = world(2);
        w.halo_exchange(128);
        assert_eq!(w.messages(), 2);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_rejected() {
        world(2).send(1, 1, 8);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn bad_rank_rejected() {
        world(2).send(0, 5, 8);
    }
}
