//! A full-duplex channel between two nodes, with functional messages.
//!
//! §3.2: full duplex "improves not only the overall bandwidth but also
//! simplifies the communication protocols by excluding deadlocks". A
//! [`DuplexChannel`] bundles the two independent directions; messages
//! carry real payload bytes and a CRC the receiving link interface
//! verifies (§3.3).

use pm_node::crc::{crc16, Crc16};
use pm_node::ni::{NiConfig, NiDirection, CRC_TRAILER_BYTES};
use pm_sim::time::Time;

/// Which node of the pair an operation acts for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// Node A.
    A,
    /// Node B.
    B,
}

impl Side {
    /// The opposite side.
    pub fn peer(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// A message with payload and checksum.
///
/// # Examples
///
/// ```
/// use pm_comm::duplex::Message;
///
/// let m = Message::new(b"hello".to_vec());
/// assert!(m.verify());
/// assert_eq!(m.payload(), b"hello");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    payload: Vec<u8>,
    crc: u16,
}

impl Message {
    /// Creates a message, computing its CRC as the link interface would.
    pub fn new(payload: Vec<u8>) -> Self {
        let crc = crc16(&payload);
        Message { payload, crc }
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// The stored checksum.
    pub fn crc(&self) -> u16 {
        self.crc
    }

    /// Verifies payload against checksum (the receiving ASIC's check).
    pub fn verify(&self) -> bool {
        Crc16::verify(&self.payload, self.crc)
    }

    /// Corrupts one bit — used by the fault-injection tests to prove the
    /// CRC catches it.
    pub fn corrupt_bit(&mut self, byte: usize, bit: u8) {
        if let Some(b) = self.payload.get_mut(byte) {
            *b ^= 1 << (bit & 7);
        }
    }
}

/// A failed receive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvError {
    /// No message is pending for this side.
    Empty,
    /// A message arrived but its CRC check failed.
    CrcMismatch,
}

impl core::fmt::Display for RecvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecvError::Empty => f.write_str("no message pending"),
            RecvError::CrcMismatch => f.write_str("message failed its CRC check"),
        }
    }
}

impl std::error::Error for RecvError {}

/// The full-duplex pair of NI directions plus in-flight message payloads.
///
/// Timing flows through the [`NiDirection`]s; payload bytes ride along in
/// a queue per direction so receivers get real data to verify.
///
/// # Examples
///
/// ```
/// use pm_comm::duplex::{DuplexChannel, Message, Side};
/// use pm_node::ni::NiConfig;
/// use pm_sim::time::Time;
///
/// let mut ch = DuplexChannel::new(NiConfig::powermanna());
/// let sent = ch.send(Side::A, Time::ZERO, Message::new(vec![1, 2, 3]));
/// let (at, msg) = ch.recv(Side::B, sent).expect("delivered");
/// assert_eq!(msg.payload(), &[1, 2, 3]);
/// assert!(at > Time::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct DuplexChannel {
    a_to_b: NiDirection,
    b_to_a: NiDirection,
    queue_ab: std::collections::VecDeque<Message>,
    queue_ba: std::collections::VecDeque<Message>,
}

impl DuplexChannel {
    /// Creates an idle channel with identical NI config on both ends.
    pub fn new(config: NiConfig) -> Self {
        DuplexChannel {
            a_to_b: NiDirection::new(config),
            b_to_a: NiDirection::new(config),
            queue_ab: std::collections::VecDeque::new(),
            queue_ba: std::collections::VecDeque::new(),
        }
    }

    /// Direct access to one direction's timing model.
    pub fn direction(&mut self, from: Side) -> &mut NiDirection {
        match from {
            Side::A => &mut self.a_to_b,
            Side::B => &mut self.b_to_a,
        }
    }

    /// Sends a whole message from `from` at `t`, pushing it through the
    /// NI in cache-line chunks and blocking (in simulated time) on flow
    /// control. Returns when the sending CPU is done pushing.
    ///
    /// # Panics
    ///
    /// Panics if flow control blocks and the peer never drains (a real
    /// driver would spin; in the microbenchmarks the orchestrator drains
    /// the peer first).
    pub fn send(&mut self, from: Side, t: Time, msg: Message) -> Time {
        let dir = self.direction(from);
        let mut cursor = t;
        let mut remaining = msg.len() as u32 + CRC_TRAILER_BYTES;
        while remaining > 0 {
            let chunk = remaining.min(64);
            cursor = dir
                .push(cursor, chunk)
                .expect("peer receive FIFO permanently full — drain the peer first");
            remaining -= chunk;
        }
        match from {
            Side::A => self.queue_ab.push_back(msg),
            Side::B => self.queue_ba.push_back(msg),
        }
        cursor
    }

    /// Receives the next pending message at `to`, returning the pop
    /// completion time and the (CRC-verified) message.
    ///
    /// # Errors
    ///
    /// [`RecvError::Empty`] if nothing is pending;
    /// [`RecvError::CrcMismatch`] if verification fails (the message is
    /// consumed, as the hardware would discard it).
    pub fn recv(&mut self, to: Side, t: Time) -> Result<(Time, Message), RecvError> {
        let (dir, queue) = match to {
            Side::A => (&mut self.b_to_a, &mut self.queue_ba),
            Side::B => (&mut self.a_to_b, &mut self.queue_ab),
        };
        let msg = queue.pop_front().ok_or(RecvError::Empty)?;
        let mut cursor = t;
        let mut remaining = msg.len() as u32 + CRC_TRAILER_BYTES;
        while remaining > 0 {
            let chunk = remaining.min(64);
            cursor = dir
                .pop(cursor, chunk)
                .expect("payload queue ahead of NI timing model");
            remaining -= chunk;
        }
        if msg.verify() {
            Ok((cursor, msg))
        } else {
            Err(RecvError::CrcMismatch)
        }
    }

    /// Total payload bytes sent A→B and B→A.
    pub fn bytes(&self) -> (u64, u64) {
        (self.a_to_b.bytes(), self.b_to_a.bytes())
    }

    /// Resets both directions and drops queued messages.
    pub fn reset(&mut self) {
        self.a_to_b.reset();
        self.b_to_a.reset();
        self.queue_ab.clear();
        self.queue_ba.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> DuplexChannel {
        DuplexChannel::new(NiConfig::powermanna())
    }

    #[test]
    fn round_trip_preserves_payload() {
        let mut ch = channel();
        let data: Vec<u8> = (0..200).collect();
        let sent = ch.send(Side::A, Time::ZERO, Message::new(data.clone()));
        let (at, msg) = ch.recv(Side::B, sent).unwrap();
        assert_eq!(msg.payload(), data.as_slice());
        assert!(at > sent);
    }

    #[test]
    fn directions_are_independent() {
        let mut ch = channel();
        let sa = ch.send(Side::A, Time::ZERO, Message::new(vec![1]));
        let sb = ch.send(Side::B, Time::ZERO, Message::new(vec![2]));
        assert_eq!(sa, sb, "full duplex: both sends proceed in parallel");
        let (_, ma) = ch.recv(Side::B, sa).unwrap();
        let (_, mb) = ch.recv(Side::A, sb).unwrap();
        assert_eq!(ma.payload(), &[1]);
        assert_eq!(mb.payload(), &[2]);
    }

    #[test]
    fn recv_empty_errors() {
        let mut ch = channel();
        assert_eq!(ch.recv(Side::A, Time::ZERO).unwrap_err(), RecvError::Empty);
    }

    #[test]
    fn corrupted_message_fails_crc() {
        let mut ch = channel();
        let mut msg = Message::new(vec![0xAA; 32]);
        msg.corrupt_bit(7, 3);
        // The CRC was computed before corruption, as if the wire flipped
        // a bit after the sending ASIC summed the payload.
        let sent = ch.send(Side::A, Time::ZERO, msg);
        assert_eq!(ch.recv(Side::B, sent).unwrap_err(), RecvError::CrcMismatch);
    }

    #[test]
    fn fifo_ordering_is_preserved() {
        let mut ch = channel();
        let mut t = Time::ZERO;
        for i in 0..5u8 {
            t = ch.send(Side::A, t, Message::new(vec![i; 8]));
        }
        let mut rt = t;
        for i in 0..5u8 {
            let (nt, m) = ch.recv(Side::B, rt).unwrap();
            assert_eq!(m.payload()[0], i);
            rt = nt;
        }
    }

    #[test]
    fn side_peer_flips() {
        assert_eq!(Side::A.peer(), Side::B);
        assert_eq!(Side::B.peer(), Side::A);
    }

    #[test]
    fn reset_drops_pending() {
        let mut ch = channel();
        ch.send(Side::A, Time::ZERO, Message::new(vec![9]));
        ch.reset();
        assert_eq!(ch.recv(Side::B, Time::ZERO).unwrap_err(), RecvError::Empty);
        assert_eq!(ch.bytes(), (0, 0));
    }

    #[test]
    fn empty_message_has_crc_only() {
        let m = Message::new(Vec::new());
        assert!(m.is_empty());
        assert!(m.verify());
        assert_eq!(m.crc(), 0xFFFF);
    }
}
