//! Calibrated models of the cluster baselines: BIP and FM on Myrinet.
//!
//! §5.2: "Performance data for BIP and FM are taken from \[9\] because the
//! data obtained from our Linux 2.2 … were too slow for a fair
//! comparison." The paper compares against literature numbers measured on
//! a Pentium Pro 200 MHz cluster with Myrinet; we encode the same curves
//! as piecewise LogGP-style models so every figure has its baselines.
//!
//! Model form: one-way latency `L(n) = L0 + n/G` with a rendezvous step
//! at `rendezvous_bytes`; bandwidth saturates along `BW(n) =
//! BW_max * n / (n + n_half)`; the gap is `max(o_send, n/BW_max)`.

use pm_sim::time::Duration;

/// A LogGP-style software/NIC stack model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoggpModel {
    /// Display name ("BIP", "FM").
    pub name: &'static str,
    /// Zero-byte one-way latency.
    pub latency0: Duration,
    /// Large-message bandwidth in Mbyte/s (the `1/G` of LogGP).
    pub bandwidth_mbs: f64,
    /// Message size at which bandwidth reaches half its maximum.
    pub half_point_bytes: f64,
    /// Per-message sending overhead (the LogP `o`/gap floor).
    pub o_send: Duration,
    /// Message size where the stack switches to a rendezvous protocol
    /// (adds one extra round trip), `u32::MAX` if never.
    pub rendezvous_bytes: u32,
    /// Extra latency paid by the rendezvous handshake.
    pub rendezvous_cost: Duration,
    /// Bidirectional scaling: aggregate bidirectional bandwidth as a
    /// multiple of unidirectional (Myrinet full duplex sustains close
    /// to 2x; the PCI bus caps it below that).
    pub duplex_factor: f64,
}

impl LoggpModel {
    /// BIP (Basic Interface for Parallelism) on Myrinet/PentiumPro-200:
    /// 8 bytes in 6.4 µs, >100 Mbyte/s for large messages, rendezvous
    /// above 1 Kbyte.
    pub fn bip() -> Self {
        LoggpModel {
            name: "BIP",
            latency0: Duration::from_ns(6_300),
            bandwidth_mbs: 126.0,
            half_point_bytes: 4096.0,
            o_send: Duration::from_ns(3_500),
            rendezvous_bytes: 1024,
            rendezvous_cost: Duration::from_ns(12_000),
            duplex_factor: 1.8,
        }
    }

    /// FM (Fast Messages) on the same cluster: software flow control adds
    /// per-message work — 8 bytes in 9.2 µs, lower peak bandwidth.
    pub fn fm() -> Self {
        LoggpModel {
            name: "FM",
            latency0: Duration::from_ns(9_100),
            bandwidth_mbs: 77.0,
            half_point_bytes: 2048.0,
            o_send: Duration::from_ns(5_500),
            rendezvous_bytes: u32::MAX,
            rendezvous_cost: Duration::ZERO,
            duplex_factor: 1.6,
        }
    }

    /// One-way latency for an `n`-byte message (Figure 9's curves).
    pub fn one_way_latency(&self, n: u32) -> Duration {
        let wire = Duration::from_us_f64(n as f64 / self.bandwidth_mbs);
        let mut lat = self.latency0 + wire;
        if n >= self.rendezvous_bytes {
            lat += self.rendezvous_cost;
        }
        lat
    }

    /// Message-sending time at saturation (Figure 10's curves).
    pub fn gap(&self, n: u32) -> Duration {
        let stream = Duration::from_us_f64(n as f64 / self.bandwidth_mbs);
        self.o_send.max(stream)
    }

    /// Unidirectional streaming bandwidth in Mbyte/s (Figure 11).
    pub fn unidirectional_bandwidth(&self, n: u32) -> f64 {
        // Saturating curve through the per-message overhead floor.
        let per_msg = self.gap(n).as_secs_f64();
        let raw = n as f64 / per_msg / 1e6;
        raw.min(self.bandwidth_mbs * n as f64 / (n as f64 + self.half_point_bytes) + 0.0)
            .max(raw.min(self.bandwidth_mbs))
            .min(self.bandwidth_mbs)
    }

    /// Aggregate bidirectional bandwidth in Mbyte/s (Figure 12).
    pub fn bidirectional_bandwidth(&self, n: u32) -> f64 {
        self.unidirectional_bandwidth(n) * self.duplex_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bip_8_bytes_is_6_4_us() {
        let lat = LoggpModel::bip().one_way_latency(8).as_us_f64();
        assert!((6.2..6.6).contains(&lat), "BIP 8-byte latency {lat:.2}");
    }

    #[test]
    fn fm_8_bytes_is_9_2_us() {
        let lat = LoggpModel::fm().one_way_latency(8).as_us_f64();
        assert!((9.0..9.4).contains(&lat), "FM 8-byte latency {lat:.2}");
    }

    #[test]
    fn bip_beats_fm_everywhere() {
        for n in [8u32, 64, 512, 4096, 65536] {
            assert!(
                LoggpModel::bip().one_way_latency(n) < LoggpModel::fm().one_way_latency(n),
                "BIP should be faster at {n} bytes"
            );
        }
    }

    #[test]
    fn rendezvous_step_visible_in_bip() {
        let bip = LoggpModel::bip();
        let below = bip.one_way_latency(1023);
        let above = bip.one_way_latency(1024);
        assert!(above > below + bip.rendezvous_cost / 2);
    }

    #[test]
    fn bandwidth_saturates() {
        let bip = LoggpModel::bip();
        let small = bip.unidirectional_bandwidth(64);
        let large = bip.unidirectional_bandwidth(256 * 1024);
        assert!(small < large);
        assert!(large <= bip.bandwidth_mbs + 1e-9);
        assert!(large > bip.bandwidth_mbs * 0.9);
    }

    #[test]
    fn myrinet_large_messages_beat_powermanna_link() {
        // Figure 11: "PowerMANNA's performance is limited by its current
        // network technology to 60 Mbyte/s"; Myrinet/BIP goes beyond.
        let bip = LoggpModel::bip().unidirectional_bandwidth(1 << 20);
        assert!(bip > 100.0);
    }

    #[test]
    fn gap_floor_is_send_overhead() {
        let fm = LoggpModel::fm();
        assert_eq!(fm.gap(1), fm.o_send);
        assert!(fm.gap(1 << 20) > fm.o_send);
    }

    #[test]
    fn duplex_factor_bounds_bidirectional() {
        let bip = LoggpModel::bip();
        let uni = bip.unidirectional_bandwidth(1 << 16);
        let bi = bip.bidirectional_bandwidth(1 << 16);
        assert!(bi > uni && bi < 2.0 * uni);
    }
}
