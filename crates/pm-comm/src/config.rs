//! The communication-stack cost model.

use pm_node::ni::NiConfig;
use pm_sim::time::Duration;

/// Costs of the user-level messaging path on a PowerMANNA node.
///
/// The hardware parts (PIO word cost, FIFO sizes, link rate) live in
/// [`NiConfig`]; this adds the software costs of the optimised user-level
/// MPI path §4 describes, calibrated so the 8-byte one-way latency lands
/// at the paper's 2.75 µs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommConfig {
    /// Link-interface geometry and timing.
    pub ni: NiConfig,
    /// Crossbar through-routing per hop (0.2 µs) paid when a message
    /// opens its connection.
    pub route_setup: Duration,
    /// Crossbars on the path (1 within a cluster).
    pub hops: u32,
    /// Header bytes carried ahead of the payload (route bytes, length,
    /// tag).
    pub header_bytes: u32,
    /// Trailer bytes (CRC).
    pub trailer_bytes: u32,
    /// User-level software cost on the sending CPU per message (argument
    /// checks, header build, connection bookkeeping).
    pub sw_send: Duration,
    /// User-level software cost on the receiving CPU per message (header
    /// parse, matching, completion).
    pub sw_recv: Duration,
    /// Cache lines the bidirectional driver sends before it must turn
    /// around and test the receive FIFO (§5.2: "at most 4 cache lines").
    pub alternation_lines: u32,
    /// Software cost of one direction switch in the bidirectional driver
    /// (status reads across the bus, state save/restore).
    pub switch_cost: Duration,
    /// Cache-line size used for PIO chunking (64 bytes on the MPC620).
    pub line_bytes: u32,
}

impl Default for CommConfig {
    fn default() -> Self {
        Self::powermanna()
    }
}

impl CommConfig {
    /// The PowerMANNA user-level path through one crossbar.
    pub fn powermanna() -> Self {
        CommConfig {
            ni: NiConfig::powermanna(),
            route_setup: Duration::from_ns(200),
            hops: 1,
            header_bytes: 8,
            trailer_bytes: 8,
            sw_send: Duration::from_ns(1100),
            sw_recv: Duration::from_ns(900),
            alternation_lines: 4,
            switch_cost: Duration::from_ns(2000),
            line_bytes: 64,
        }
    }

    /// The same stack with `factor`-times deeper NI FIFOs (ablation X3).
    /// The driver then sends `factor * 4` lines per turn.
    pub fn with_fifo_factor(mut self, factor: u32) -> Self {
        self.ni = self.ni.with_fifo_factor(factor);
        self.alternation_lines *= factor;
        self
    }

    /// The same path routed over `hops` crossbars (inter-cluster traffic
    /// in the 256-processor system).
    pub fn with_hops(mut self, hops: u32) -> Self {
        self.hops = hops;
        // Each extra crossbar adds a route byte to the header and a
        // pass-through delay to the path.
        self.header_bytes += hops.saturating_sub(self.hops.min(hops));
        self.ni.path_delay = Duration::from_ns(100) * hops as u64;
        self
    }

    /// Total wire overhead bytes per message (header + trailer).
    pub fn envelope_bytes(&self) -> u32 {
        self.header_bytes + self.trailer_bytes
    }

    /// Connection setup time: one route byte decode per hop.
    pub fn setup_time(&self) -> Duration {
        (self.route_setup + self.ni.wire.byte_time) * self.hops as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powermanna_defaults_match_paper() {
        let c = CommConfig::powermanna();
        assert_eq!(c.alternation_lines, 4);
        assert_eq!(c.line_bytes, 64);
        assert_eq!(c.ni.send_fifo_bytes, 256);
        assert!((0.2..0.25).contains(&c.setup_time().as_us_f64()));
    }

    #[test]
    fn fifo_factor_scales_geometry_and_alternation() {
        let c = CommConfig::powermanna().with_fifo_factor(4);
        assert_eq!(c.ni.send_fifo_bytes, 1024);
        assert_eq!(c.alternation_lines, 16);
    }

    #[test]
    fn hops_scale_setup_and_path() {
        let c1 = CommConfig::powermanna();
        let c3 = CommConfig::powermanna().with_hops(3);
        assert!(c3.setup_time() > c1.setup_time() * 2);
        assert!(c3.ni.path_delay > c1.ni.path_delay);
    }

    #[test]
    fn envelope_is_header_plus_trailer() {
        let c = CommConfig::powermanna();
        assert_eq!(c.envelope_bytes(), 16);
    }
}
