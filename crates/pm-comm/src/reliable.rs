//! Fault injection and retransmission over the duplex channel.
//!
//! §3.3: the link-interface ASIC's CRC ensures "that communication is not
//! only efficient but also reliable". Reliability needs two halves: the
//! *detection* (CRC, modelled in [`crate::duplex`]) and the *recovery*
//! (software retransmission). [`ReliableChannel`] injects wire bit errors
//! at a configurable rate and retransmits CRC-failed messages, so tests
//! can measure both correctness under faults and the throughput cost of
//! an unreliable cable.

use crate::duplex::{DuplexChannel, Message, RecvError, Side};
use pm_node::ni::NiConfig;
use pm_sim::rng::SimRng;
use pm_sim::time::Time;

/// Per-message delivery statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Messages handed to `send`.
    pub sent: u64,
    /// Wire transmissions (sends + retransmissions).
    pub transmissions: u64,
    /// CRC failures detected at the receiver.
    pub crc_failures: u64,
}

/// A duplex channel with injected bit errors and stop-and-wait
/// retransmission.
///
/// # Examples
///
/// ```
/// use pm_comm::duplex::{Message, Side};
/// use pm_comm::reliable::ReliableChannel;
/// use pm_node::ni::NiConfig;
/// use pm_sim::time::Time;
///
/// // One in five messages corrupted: everything still arrives intact.
/// let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.2, 42);
/// let (at, msg) = ch.send_reliably(Side::A, Time::ZERO, Message::new(vec![7; 32]));
/// assert_eq!(msg.payload(), &[7; 32]);
/// assert!(at > Time::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct ReliableChannel {
    channel: DuplexChannel,
    error_rate: f64,
    rng: SimRng,
    stats: ReliabilityStats,
}

impl ReliableChannel {
    /// Creates a channel whose wire corrupts each message with
    /// probability `error_rate` (clamped to `[0, 0.95]` — a wire that
    /// corrupts everything can never deliver).
    pub fn new(config: NiConfig, error_rate: f64, seed: u64) -> Self {
        ReliableChannel {
            channel: DuplexChannel::new(config),
            error_rate: error_rate.clamp(0.0, 0.95),
            rng: SimRng::seed_from(seed),
            stats: ReliabilityStats::default(),
        }
    }

    /// The injected error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_rate
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ReliabilityStats {
        self.stats
    }

    /// Sends `msg` from `from` at `t` and drives the exchange until the
    /// peer holds an intact copy, retransmitting on CRC failure.
    /// Returns the delivery completion time and the verified message.
    ///
    /// Stop-and-wait: the simulated sender learns of a failure when the
    /// receiver's check fails (the NACK travel time is folded into the
    /// next attempt's start).
    pub fn send_reliably(&mut self, from: Side, t: Time, msg: Message) -> (Time, Message) {
        self.stats.sent += 1;
        let mut attempt_start = t;
        loop {
            self.stats.transmissions += 1;
            let mut wire_msg = msg.clone();
            if self.rng.gen_bool(self.error_rate) {
                // Flip one pseudo-random payload bit in flight, after the
                // sending ASIC computed the CRC.
                if !wire_msg.is_empty() {
                    let byte = self.rng.gen_range(0, wire_msg.len() as u64) as usize;
                    let bit = self.rng.gen_range(0, 8) as u8;
                    wire_msg.corrupt_bit(byte, bit);
                }
            }
            let sent_at = self.channel.send(from, attempt_start, wire_msg);
            match self.channel.recv(from.peer(), sent_at) {
                Ok((done, delivered)) => return (done, delivered),
                Err(RecvError::CrcMismatch) => {
                    self.stats.crc_failures += 1;
                    // NACK + turnaround before the retransmission.
                    attempt_start = sent_at + self.channel_nack_cost();
                }
                Err(RecvError::Empty) => unreachable!("message was just sent"),
            }
        }
    }

    fn channel_nack_cost(&self) -> pm_sim::time::Duration {
        // An 8-byte NACK's worth of wire plus driver turnaround.
        pm_sim::time::Duration::from_us(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_free_channel_never_retransmits() {
        let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.0, 1);
        for i in 0..20u8 {
            let (_, m) = ch.send_reliably(Side::A, Time::ZERO, Message::new(vec![i; 16]));
            assert_eq!(m.payload()[0], i);
        }
        assert_eq!(ch.stats().transmissions, 20);
        assert_eq!(ch.stats().crc_failures, 0);
    }

    #[test]
    fn lossy_channel_retransmits_until_clean() {
        let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.5, 7);
        let mut last = Time::ZERO;
        for i in 0..50u8 {
            let (at, m) = ch.send_reliably(Side::A, last, Message::new(vec![i; 64]));
            assert_eq!(m.payload(), &[i; 64], "message {i} corrupted through");
            assert!(m.verify());
            last = at;
        }
        let s = ch.stats();
        assert_eq!(s.sent, 50);
        assert!(
            s.crc_failures > 10,
            "50% loss should trigger retries: {s:?}"
        );
        assert_eq!(s.transmissions, s.sent + s.crc_failures);
    }

    #[test]
    fn throughput_degrades_with_error_rate() {
        let run = |rate: f64| -> f64 {
            let mut ch = ReliableChannel::new(NiConfig::powermanna(), rate, 3);
            let mut t = Time::ZERO;
            let n = 64;
            for i in 0..n {
                let (at, _) = ch.send_reliably(Side::A, t, Message::new(vec![i as u8; 128]));
                t = at;
            }
            (n as u64 * 128) as f64 / t.as_secs_f64() / 1e6
        };
        let clean = run(0.0);
        let noisy = run(0.4);
        assert!(
            noisy < clean * 0.85,
            "errors must cost bandwidth: clean {clean:.1} vs noisy {noisy:.1} MB/s"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.3, 99);
            let mut t = Time::ZERO;
            for i in 0..10u8 {
                let (at, _) = ch.send_reliably(Side::B, t, Message::new(vec![i; 32]));
                t = at;
            }
            (t, ch.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn extreme_rates_are_clamped() {
        let ch = ReliableChannel::new(NiConfig::powermanna(), 2.0, 0);
        assert!(ch.error_rate() <= 0.95);
        // Even at the clamp, delivery terminates.
        let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.95, 5);
        let (_, m) = ch.send_reliably(Side::A, Time::ZERO, Message::new(vec![1, 2, 3]));
        assert!(m.verify());
    }
}
