//! Fault injection and retransmission: the recovery tiers over the CRC.
//!
//! §3.3: the link-interface ASIC's CRC ensures "that communication is not
//! only efficient but also reliable". Reliability needs the *detection*
//! (CRC, modelled in [`crate::duplex`] and [`pm_node::crc`]) and the
//! *recovery*, which this module supplies at two scales:
//!
//! * [`ReliableChannel`] — stop-and-wait retransmission over a single
//!   duplex channel, with injected wire bit errors. Attempts are capped
//!   ([`RetryPolicy`]) and failures are typed ([`DeliveryError`]) — a
//!   hopeless wire returns an error instead of spinning forever.
//! * [`ResilientNetwork`] — the same contract over multi-hop
//!   [`pm_net::Network`] routes driven by a seeded
//!   [`pm_net::fault::FaultPlan`]: tier 1 retransmits CRC-failed
//!   messages with exponential backoff, tier 2 fails over to the
//!   secondary duplicated-network plane when a link death partitions the
//!   preferred one (240→120 MB/s degradation), and the [`FaultStats`]
//!   ledger records what each tier absorbed.

use crate::config::CommConfig;
use crate::duplex::{DuplexChannel, Message, RecvError, Side};
use pm_net::error::NetError;
use pm_net::fault::{FaultPlan, FaultPlanError, FaultStats, TransientInjector};
use pm_net::network::{Network, RouteError};
use pm_net::outcome::TransferOutcome;
use pm_net::topology::NodeId;
use pm_node::ni::{NiConfig, CRC_TRAILER_BYTES};
use pm_sim::time::{Duration, Time};

/// An 8-byte NACK's worth of wire plus driver turnaround: the fixed
/// part of every retransmission gap.
const NACK_COST: Duration = Duration::from_us(1);

/// How hard a sender tries before giving up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Wire transmissions per message, first attempt included.
    pub max_attempts: u32,
    /// Extra wait before the first retransmission; doubles per failure.
    pub initial_backoff: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub max_backoff: Duration,
    /// `Some(seed)` jitters each backoff uniformly into
    /// `[backoff/2, backoff]`, hashed from `(seed, message, attempt)`
    /// — deterministic per sender, decorrelated across messages, so
    /// senders knocked back by the same event do not retry in lockstep
    /// (synchronized retry storms re-collide on the recovering
    /// resource). `None` keeps the exact un-jittered gaps.
    pub jitter: Option<u64>,
}

impl Default for RetryPolicy {
    /// 16 attempts with 1 µs → 64 µs exponential backoff: even a wire
    /// corrupting 90 % of transmissions delivers with probability
    /// 1 − 0.9¹⁶ ≈ 0.81 per message, while a dead peer costs a bounded
    /// ~0.6 ms before the typed error. Jitter is off by default (the
    /// historical deterministic gaps).
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 16,
            initial_backoff: Duration::from_us(1),
            max_backoff: Duration::from_us(64),
            jitter: None,
        }
    }
}

impl RetryPolicy {
    /// The wait inserted after failed attempt number `attempt` (1-based)
    /// before the next transmission: NACK turnaround plus capped
    /// exponential backoff.
    fn gap_after(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(32);
        let backoff = Duration::from_ps(
            self.initial_backoff
                .as_ps()
                .saturating_mul(1u64 << doublings),
        );
        NACK_COST + backoff.min(self.max_backoff)
    }

    /// [`gap_after`](Self::gap_after), decorrelated per message when
    /// jitter is enabled: `salt` identifies the message (any stable
    /// per-message counter), and the backoff component is drawn
    /// uniformly from `[backoff/2, backoff]` by a splitmix64 hash of
    /// `(jitter_seed, salt, attempt)`. With `jitter: None` this is
    /// exactly `gap_after` — byte-stable with historical runs.
    fn salted_gap_after(&self, salt: u64, attempt: u32) -> Duration {
        let Some(seed) = self.jitter else {
            return self.gap_after(attempt);
        };
        let full = self.gap_after(attempt).saturating_sub(NACK_COST).as_ps();
        let lo = full / 2;
        let span = full - lo + 1;
        let h = splitmix64(
            seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(attempt) << 48),
        );
        NACK_COST + Duration::from_ps(lo + h % span)
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Why a message could not be delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeliveryError {
    /// Every attempt up to [`RetryPolicy::max_attempts`] failed its CRC
    /// check (or was severed mid-flight).
    AttemptsExhausted {
        /// Attempts actually made.
        attempts: u32,
    },
    /// No healthy route exists on either network plane — retrying
    /// cannot help until a link is repaired.
    Unreachable {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
}

impl core::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeliveryError::AttemptsExhausted { attempts } => {
                write!(f, "gave up after {attempts} failed transmissions")
            }
            DeliveryError::Unreachable { src, dst } => {
                write!(f, "no healthy route from node {src} to node {dst}")
            }
        }
    }
}

impl std::error::Error for DeliveryError {}

/// Delivery failures fold into the layer-spanning [`NetError`] so a
/// caller mixing route opens, mesh traffic and reliable sends can `?`
/// them all into one error type.
impl From<DeliveryError> for NetError {
    fn from(e: DeliveryError) -> Self {
        match e {
            DeliveryError::AttemptsExhausted { attempts } => {
                NetError::AttemptsExhausted { attempts }
            }
            DeliveryError::Unreachable { src, dst } => NetError::Unreachable { src, dst },
        }
    }
}

/// Per-message delivery statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Messages handed to `send`.
    pub sent: u64,
    /// Wire transmissions (sends + retransmissions).
    pub transmissions: u64,
    /// CRC failures detected at the receiver.
    pub crc_failures: u64,
    /// Messages abandoned after the attempt cap.
    pub exhausted: u64,
}

/// A duplex channel with injected bit errors and stop-and-wait
/// retransmission.
///
/// # Examples
///
/// ```
/// use pm_comm::duplex::{Message, Side};
/// use pm_comm::reliable::ReliableChannel;
/// use pm_node::ni::NiConfig;
/// use pm_sim::time::Time;
///
/// // One in five messages corrupted: everything still arrives intact.
/// let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.2, 42).unwrap();
/// let (at, msg) = ch
///     .send_reliably(Side::A, Time::ZERO, Message::new(vec![7; 32]))
///     .unwrap();
/// assert_eq!(msg.payload(), &[7; 32]);
/// assert!(at > Time::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct ReliableChannel {
    channel: DuplexChannel,
    injector: TransientInjector,
    policy: RetryPolicy,
    stats: ReliabilityStats,
}

impl ReliableChannel {
    /// Creates a channel whose wire corrupts each transmission with
    /// probability `error_rate`, under the default [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::InvalidRate`] unless `0 <= error_rate < 1` — a
    /// wire that corrupts everything can never deliver, and silently
    /// clamping would hide the configuration bug.
    pub fn new(config: NiConfig, error_rate: f64, seed: u64) -> Result<Self, FaultPlanError> {
        let plan = FaultPlan::clean(seed).with_transient_rate(error_rate)?;
        Ok(ReliableChannel {
            channel: DuplexChannel::new(config),
            injector: TransientInjector::new(&plan),
            policy: RetryPolicy::default(),
            stats: ReliabilityStats::default(),
        })
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        assert!(policy.max_attempts > 0, "need at least one attempt");
        self.policy = policy;
        self
    }

    /// The injected error rate.
    pub fn error_rate(&self) -> f64 {
        self.injector.rate()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ReliabilityStats {
        self.stats
    }

    /// Publishes the channel's counters under `prefix`:
    /// `{prefix}/sent`, `{prefix}/transmissions`,
    /// `{prefix}/crc_failures` and `{prefix}/exhausted`.
    pub fn publish_metrics(&self, reg: &mut pm_sim::metrics::MetricRegistry, prefix: &str) {
        reg.count(&format!("{prefix}/sent"), self.stats.sent);
        reg.count(&format!("{prefix}/transmissions"), self.stats.transmissions);
        reg.count(&format!("{prefix}/crc_failures"), self.stats.crc_failures);
        reg.count(&format!("{prefix}/exhausted"), self.stats.exhausted);
    }

    /// Sends `msg` from `from` at `t` and drives the exchange until the
    /// peer holds an intact copy, retransmitting on CRC failure up to
    /// the policy's attempt cap with exponential backoff. Returns the
    /// delivery completion time and the verified message.
    ///
    /// Stop-and-wait: the simulated sender learns of a failure when the
    /// receiver's check fails (the NACK travel time and backoff are
    /// folded into the next attempt's start).
    ///
    /// # Errors
    ///
    /// [`DeliveryError::AttemptsExhausted`] when the cap runs out.
    pub fn send_reliably(
        &mut self,
        from: Side,
        t: Time,
        msg: Message,
    ) -> Result<(Time, Message), DeliveryError> {
        self.stats.sent += 1;
        let mut attempt_start = t;
        for attempt in 1..=self.policy.max_attempts {
            self.stats.transmissions += 1;
            let mut wire_msg = msg.clone();
            if let Some((byte, bit)) = self.injector.draw(wire_msg.len()) {
                // Flip one pseudo-random payload bit in flight, after
                // the sending ASIC computed the CRC.
                wire_msg.corrupt_bit(byte, bit);
            }
            let sent_at = self.channel.send(from, attempt_start, wire_msg);
            match self.channel.recv(from.peer(), sent_at) {
                Ok((done, delivered)) => return Ok((done, delivered)),
                Err(RecvError::CrcMismatch) => {
                    self.stats.crc_failures += 1;
                    attempt_start =
                        sent_at + self.policy.salted_gap_after(self.stats.sent, attempt);
                }
                Err(RecvError::Empty) => unreachable!("message was just sent"),
            }
        }
        self.stats.exhausted += 1;
        Err(DeliveryError::AttemptsExhausted {
            attempts: self.policy.max_attempts,
        })
    }
}

/// CRC-checked, retransmitting, plane-failing-over transport over a
/// multi-hop [`Network`] — the three recovery tiers composed.
///
/// Owns the network plus a [`FaultPlan`]: scheduled link deaths are
/// applied as simulated time advances, transfers in flight across a
/// dying link are severed and retransmitted, and opens fall over to the
/// secondary duplicated-network plane when the preferred one has no
/// healthy route left.
///
/// # Examples
///
/// ```
/// use pm_comm::reliable::ResilientNetwork;
/// use pm_net::fault::FaultPlan;
/// use pm_net::network::Network;
/// use pm_net::topology::Topology;
/// use pm_sim::time::Time;
///
/// let plan = FaultPlan::clean(7).with_transient_rate(0.2).unwrap();
/// let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
/// let o = rn.send(0, 1, 0, Time::ZERO, &[0xAB; 256]).unwrap();
/// assert_eq!(rn.stats().delivered_bytes, 256);
/// assert_eq!(o.bytes, 256);
/// assert!(o.finished > Time::ZERO);
/// assert!(o.crc.is_some(), "reliable sends carry the verified CRC");
/// ```
#[derive(Clone, Debug)]
pub struct ResilientNetwork {
    net: Network,
    plan: FaultPlan,
    injector: TransientInjector,
    policy: RetryPolicy,
    /// Software send/receive overheads of the PIO driver (§4).
    sw_send: Duration,
    sw_recv: Duration,
    /// Cursor into the plan's link-down schedule: events before it are
    /// applied to the network.
    next_event: usize,
    stats: FaultStats,
}

impl ResilientNetwork {
    /// Wraps a network with a fault plan, the default [`RetryPolicy`]
    /// and the PowerMANNA software overheads.
    pub fn new(net: Network, plan: FaultPlan) -> Self {
        let comm = CommConfig::powermanna();
        let injector = TransientInjector::new(&plan);
        ResilientNetwork {
            net,
            plan,
            injector,
            policy: RetryPolicy::default(),
            sw_send: comm.sw_send,
            sw_recv: comm.sw_recv,
            next_event: 0,
            stats: FaultStats::default(),
        }
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        assert!(policy.max_attempts > 0, "need at least one attempt");
        self.policy = policy;
        self
    }

    /// The fault plan driving this transport.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped network (crossbar state, dead links).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The recovery ledger.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Publishes the recovery ledger and the wrapped network's crossbar
    /// counters under `prefix`: `{prefix}/faults/...`
    /// ([`FaultStats::publish`]) and `{prefix}/net/...`
    /// ([`Network::publish_metrics`]).
    pub fn publish_metrics(&self, reg: &mut pm_sim::metrics::MetricRegistry, prefix: &str) {
        self.stats.publish(reg, &format!("{prefix}/faults"));
        self.net.publish_metrics(reg, &format!("{prefix}/net"));
    }

    /// Applies every scheduled link death at or before `t`.
    pub fn advance_to(&mut self, t: Time) {
        while let Some(ev) = self.plan.schedule().get(self.next_event) {
            if ev.at > t {
                break;
            }
            if let Some(key) = self.net.link_key(ev.link) {
                if !self.net.is_link_dead(key) {
                    self.net.fail_link(ev.link);
                    self.stats.link_downs += 1;
                }
            }
            self.next_event += 1;
        }
    }

    /// The instant of the first still-pending link death at or before
    /// `until` that hits one of `keys`, if any.
    fn first_death_hitting(&self, keys: &[pm_net::topology::LinkKey], until: Time) -> Option<Time> {
        self.plan.schedule()[self.next_event..]
            .iter()
            .take_while(|ev| ev.at <= until)
            .find(|ev| {
                self.net
                    .link_key(ev.link)
                    .is_some_and(|k| keys.contains(&k))
            })
            .map(|ev| ev.at)
    }

    /// Sends `payload` from `src` to `dst` starting at `t`, preferring
    /// `preferred_plane`, and drives retransmission / plane failover
    /// until the receiver holds a CRC-verified copy or the attempt cap
    /// runs out. Scheduled link deaths are applied as simulated time
    /// passes; a death severing the worm mid-flight costs that attempt.
    ///
    /// The returned [`TransferOutcome`] tells the whole story of the
    /// message: [`finished`](TransferOutcome::finished) is the software
    /// receive completion, [`bytes`](TransferOutcome::bytes) the intact
    /// payload (CRC trailer and retransmitted copies excluded),
    /// [`attempts`](TransferOutcome::attempts)/[`crc_failures`](TransferOutcome::crc_failures)/[`severed`](TransferOutcome::severed)
    /// what the retry loop absorbed, and
    /// [`plane`](TransferOutcome::plane)/[`failed_over`](TransferOutcome::failed_over)/[`rerouted`](TransferOutcome::rerouted)
    /// how the successful attempt was routed.
    ///
    /// # Errors
    ///
    /// [`DeliveryError::Unreachable`] when no healthy route exists on
    /// either plane; [`DeliveryError::AttemptsExhausted`] when the cap
    /// runs out.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        preferred_plane: u32,
        t: Time,
        payload: &[u8],
    ) -> Result<TransferOutcome, DeliveryError> {
        self.stats.messages += 1;
        let msg = Message::new(payload.to_vec());
        let wire_bytes = payload.len() as u64 + u64::from(CRC_TRAILER_BYTES);
        let mut attempt_start = t;
        let mut msg_crc_failures = 0u32;
        let mut msg_severed = 0u32;
        for attempt in 1..=self.policy.max_attempts {
            self.advance_to(attempt_start);
            let opened = self.net.open_with_failover(
                src,
                dst,
                preferred_plane,
                attempt_start + self.sw_send,
            );
            let (mut conn, outcome) = match opened {
                Ok(x) => x,
                Err(RouteError::NoPath | RouteError::NoHealthyPath) => {
                    return Err(DeliveryError::Unreachable { src, dst });
                }
                Err(RouteError::PortHeld) => {
                    // Contention, not partition: back off like a NACK and
                    // burn an attempt waiting for the blocker to close.
                    attempt_start += self.policy.salted_gap_after(self.stats.messages, attempt);
                    continue;
                }
            };
            if outcome.failed_over {
                self.stats.failovers += 1;
            }
            if outcome.rerouted {
                self.stats.reroutes += 1;
            }
            self.stats.transmissions += 1;
            let wire = conn.transfer(conn.ready_at(), wire_bytes);
            let arrived = wire.finished;
            let keys = self.net.topology().route_link_keys(conn.route());
            let severed_at = self.first_death_hitting(&keys, arrived);
            // The close byte trails the worm (or what was left of it);
            // releasing the ports keeps crossbar state consistent either
            // way.
            conn.close(&mut self.net, arrived);
            self.advance_to(arrived);
            if let Some(death) = severed_at {
                // The tail never made it past the dying link; the sender
                // times out and tries again — on the surviving plane if
                // the death partitioned this one.
                self.stats.severed += 1;
                msg_severed += 1;
                attempt_start = death.max(attempt_start)
                    + self.policy.salted_gap_after(self.stats.messages, attempt);
                continue;
            }
            let mut wire_msg = msg.clone();
            if let Some((byte, bit)) = self.injector.draw(wire_msg.len()) {
                wire_msg.corrupt_bit(byte, bit);
            }
            let received_at = arrived + self.sw_recv;
            if !wire_msg.verify() {
                // The receiving link interface discards the message; a
                // NACK and backoff precede the retransmission.
                self.stats.crc_failures += 1;
                msg_crc_failures += 1;
                attempt_start =
                    received_at + self.policy.salted_gap_after(self.stats.messages, attempt);
                continue;
            }
            self.stats.delivered_bytes += payload.len() as u64;
            let mut delivered = wire;
            delivered.finished = received_at;
            delivered.bytes = payload.len() as u64;
            delivered.plane = outcome.plane;
            delivered.attempts = attempt;
            delivered.crc_failures = msg_crc_failures;
            delivered.severed = msg_severed;
            delivered.failed_over = outcome.failed_over;
            delivered.rerouted = outcome.rerouted;
            delivered.crc = Some(wire_msg.crc());
            return Ok(delivered);
        }
        self.stats.retries_exhausted += 1;
        Err(DeliveryError::AttemptsExhausted {
            attempts: self.policy.max_attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_net::fault::LinkRef;
    use pm_net::topology::Topology;

    #[test]
    fn error_free_channel_never_retransmits() {
        let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.0, 1).unwrap();
        for i in 0..20u8 {
            let (_, m) = ch
                .send_reliably(Side::A, Time::ZERO, Message::new(vec![i; 16]))
                .unwrap();
            assert_eq!(m.payload()[0], i);
        }
        assert_eq!(ch.stats().transmissions, 20);
        assert_eq!(ch.stats().crc_failures, 0);
    }

    #[test]
    fn lossy_channel_retransmits_until_clean() {
        let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.5, 7).unwrap();
        let mut last = Time::ZERO;
        for i in 0..50u8 {
            let (at, m) = ch
                .send_reliably(Side::A, last, Message::new(vec![i; 64]))
                .unwrap();
            assert_eq!(m.payload(), &[i; 64], "message {i} corrupted through");
            assert!(m.verify());
            last = at;
        }
        let s = ch.stats();
        assert_eq!(s.sent, 50);
        assert!(
            s.crc_failures > 10,
            "50% loss should trigger retries: {s:?}"
        );
        assert_eq!(s.transmissions, s.sent + s.crc_failures);
        assert_eq!(s.exhausted, 0);
    }

    #[test]
    fn throughput_degrades_with_error_rate() {
        let run = |rate: f64| -> f64 {
            let mut ch = ReliableChannel::new(NiConfig::powermanna(), rate, 3).unwrap();
            let mut t = Time::ZERO;
            let n = 64;
            for i in 0..n {
                let (at, _) = ch
                    .send_reliably(Side::A, t, Message::new(vec![i as u8; 128]))
                    .unwrap();
                t = at;
            }
            (n as u64 * 128) as f64 / t.as_secs_f64() / 1e6
        };
        let clean = run(0.0);
        let noisy = run(0.4);
        assert!(
            noisy < clean * 0.85,
            "errors must cost bandwidth: clean {clean:.1} vs noisy {noisy:.1} MB/s"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.3, 99).unwrap();
            let mut t = Time::ZERO;
            for i in 0..10u8 {
                let (at, _) = ch
                    .send_reliably(Side::B, t, Message::new(vec![i; 32]))
                    .unwrap();
                t = at;
            }
            (t, ch.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn out_of_range_rates_are_rejected() {
        for bad in [-0.5, 1.0, 2.0, f64::NAN] {
            assert!(
                ReliableChannel::new(NiConfig::powermanna(), bad, 0).is_err(),
                "rate {bad} must be a constructor error, not a clamp"
            );
        }
        // 0.95 used to be the silent clamp point; it is simply valid now.
        assert!(ReliableChannel::new(NiConfig::powermanna(), 0.95, 0).is_ok());
    }

    #[test]
    fn attempt_cap_is_a_typed_error() {
        let mut ch = ReliableChannel::new(NiConfig::powermanna(), 0.99, 12)
            .unwrap()
            .with_policy(RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            });
        let mut exhausted = 0;
        let mut t = Time::ZERO;
        for _ in 0..30 {
            t += Duration::from_ms(1);
            match ch.send_reliably(Side::A, t, Message::new(vec![1; 64])) {
                Ok((_, m)) => assert!(m.verify()),
                Err(DeliveryError::AttemptsExhausted { attempts }) => {
                    assert_eq!(attempts, 3);
                    exhausted += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(exhausted > 0, "99% corruption must exhaust 3 attempts");
        assert_eq!(ch.stats().exhausted, exhausted);
    }

    #[test]
    fn backoff_gap_doubles_and_saturates() {
        let p = RetryPolicy::default();
        assert_eq!(p.gap_after(1), NACK_COST + Duration::from_us(1));
        assert_eq!(p.gap_after(2), NACK_COST + Duration::from_us(2));
        assert_eq!(p.gap_after(5), NACK_COST + Duration::from_us(16));
        assert_eq!(p.gap_after(12), NACK_COST + Duration::from_us(64));
        assert_eq!(p.gap_after(40), NACK_COST + Duration::from_us(64));
    }

    #[test]
    fn unjittered_policy_keeps_exact_historical_gaps() {
        // `jitter: None` must be byte-stable with the pre-jitter gaps,
        // whatever the salt — the goldens depend on it.
        let p = RetryPolicy::default();
        for attempt in 1..=40 {
            for salt in [0u64, 1, 7, u64::MAX] {
                assert_eq!(p.salted_gap_after(salt, attempt), p.gap_after(attempt));
            }
        }
    }

    #[test]
    fn jittered_gaps_are_bounded_deterministic_and_decorrelated() {
        let p = RetryPolicy {
            jitter: Some(0xBEEF),
            ..RetryPolicy::default()
        };
        for attempt in 1..=40u32 {
            for salt in 0..64u64 {
                let gap = p.salted_gap_after(salt, attempt);
                assert_eq!(gap, p.salted_gap_after(salt, attempt), "deterministic");
                let backoff = p.gap_after(attempt).saturating_sub(NACK_COST);
                assert!(gap >= NACK_COST + Duration::from_ps(backoff.as_ps() / 2));
                assert!(gap <= NACK_COST + backoff);
            }
        }
        // Concurrent senders knocked back by the same failure must not
        // retry in lockstep: distinct salts spread the gaps.
        let gaps: Vec<Duration> = (0..32).map(|salt| p.salted_gap_after(salt, 5)).collect();
        assert!(gaps.iter().any(|&g| g != gaps[0]));
    }

    #[test]
    fn resilient_network_clean_plan_delivers_everything() {
        let mut rn =
            ResilientNetwork::new(Network::new(Topology::two_nodes()), FaultPlan::clean(1));
        let mut t = Time::ZERO;
        for i in 0..10u8 {
            let d = rn.send(0, 1, 0, t, &[i; 1024]).unwrap();
            assert_eq!(d.attempts, 1);
            assert_eq!(d.plane, 0);
            assert_eq!(d.bytes, 1024);
            assert_eq!(d.crc_failures, 0);
            assert!(!d.failed_over);
            t = d.finished;
        }
        let s = rn.stats();
        assert_eq!(s.messages, 10);
        assert_eq!(s.transmissions, 10);
        assert_eq!(s.crc_failures, 0);
        assert_eq!(s.delivered_bytes, 10 * 1024);
    }

    #[test]
    fn transient_faults_are_caught_and_retransmitted() {
        let plan = FaultPlan::clean(42).with_transient_rate(0.4).unwrap();
        let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
        let mut t = Time::ZERO;
        for i in 0..30u8 {
            let d = rn.send(0, 1, 0, t, &[i; 512]).unwrap();
            assert_eq!(
                d.crc,
                Some(Message::new(vec![i; 512]).crc()),
                "payload intact"
            );
            assert_eq!(u64::from(d.attempts), 1 + u64::from(d.crc_failures));
            t = d.finished;
        }
        let s = rn.stats();
        assert!(s.crc_failures > 0, "rate 0.4 over 30 messages: {s:?}");
        assert_eq!(s.transmissions, s.messages + s.crc_failures);
        assert_eq!(s.delivered_bytes, 30 * 512);
    }

    #[test]
    fn link_death_mid_run_fails_over_to_plane_one() {
        let plan = FaultPlan::clean(3).kill_link(
            Time::from_ps(200_000_000), // 200 us in
            LinkRef::NodeLink { node: 0, plane: 0 },
        );
        let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
        let mut t = Time::ZERO;
        let mut planes = Vec::new();
        for i in 0..12u8 {
            let d = rn.send(0, 1, 0, t, &[i; 4096]).unwrap();
            planes.push(d.plane);
            t = d.finished;
        }
        let s = rn.stats();
        assert_eq!(s.link_downs, 1);
        assert!(s.failovers >= 1, "later sends must use plane 1: {s:?}");
        assert_eq!(s.delivered_bytes, 12 * 4096);
        assert!(planes.starts_with(&[0]), "plane 0 serves the early sends");
        assert_eq!(*planes.last().unwrap(), 1, "plane 1 serves the late ones");
        // Once a send fails over, every later one does too.
        let first_failover = planes.iter().position(|&p| p == 1).unwrap();
        assert!(planes[first_failover..].iter().all(|&p| p == 1));
    }

    #[test]
    fn death_during_flight_severs_and_retries() {
        // 60 KB at 60 MB/s ≈ 1 ms on the wire; kill the link mid-worm.
        let plan = FaultPlan::clean(5).kill_link(
            Time::from_ps(500_000_000), // 500 us
            LinkRef::NodeLink { node: 0, plane: 0 },
        );
        let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
        let d = rn.send(0, 1, 0, Time::ZERO, &[9; 60_000]).unwrap();
        let s = rn.stats();
        assert_eq!(s.severed, 1, "the worm was on the dying link: {s:?}");
        assert_eq!(d.attempts, 2);
        assert_eq!(d.severed, 1, "the outcome carries the per-message count");
        assert_eq!(d.plane, 1);
        assert!(d.failed_over, "the retry crossed to the surviving plane");
        assert_eq!(s.delivered_bytes, 60_000);
    }

    #[test]
    fn delivery_errors_question_mark_into_net_error() {
        fn doomed() -> Result<Time, NetError> {
            let plan = FaultPlan::clean(8)
                .kill_link(Time::ZERO, LinkRef::NodeLink { node: 1, plane: 0 })
                .kill_link(Time::ZERO, LinkRef::NodeLink { node: 1, plane: 1 });
            let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
            let o = rn.send(0, 1, 0, Time::from_ps(1), &[1; 64])?;
            Ok(o.finished)
        }
        assert_eq!(
            doomed().unwrap_err(),
            NetError::Unreachable { src: 0, dst: 1 }
        );
    }

    #[test]
    fn resilient_network_metrics_mirror_the_ledger() {
        let plan = FaultPlan::clean(42).with_transient_rate(0.4).unwrap();
        let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
        let mut t = Time::ZERO;
        for i in 0..10u8 {
            t = rn.send(0, 1, 0, t, &[i; 512]).unwrap().finished;
        }
        let mut reg = pm_sim::metrics::MetricRegistry::new();
        rn.publish_metrics(&mut reg, "comm");
        let s = rn.stats();
        assert_eq!(reg.counter_value("comm/faults/messages"), Some(s.messages));
        assert_eq!(
            reg.counter_value("comm/faults/transmissions"),
            Some(s.transmissions)
        );
        assert_eq!(
            reg.counter_value("comm/faults/delivered_bytes"),
            Some(s.delivered_bytes)
        );
        assert_eq!(
            reg.counter_value("comm/net/xbar0/routes"),
            Some(s.transmissions),
            "every wire transmission opened exactly one route"
        );
    }

    #[test]
    fn both_planes_dead_is_unreachable() {
        let plan = FaultPlan::clean(8)
            .kill_link(Time::ZERO, LinkRef::NodeLink { node: 1, plane: 0 })
            .kill_link(Time::ZERO, LinkRef::NodeLink { node: 1, plane: 1 });
        let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
        assert_eq!(
            rn.send(0, 1, 0, Time::from_ps(1), &[1; 64]).unwrap_err(),
            DeliveryError::Unreachable { src: 0, dst: 1 }
        );
        assert_eq!(rn.stats().link_downs, 2);
        assert_eq!(rn.stats().delivered_bytes, 0);
    }

    #[test]
    fn resilient_network_is_deterministic() {
        let run = || {
            let plan = FaultPlan::clean(77)
                .with_transient_rate(0.3)
                .unwrap()
                .kill_link(
                    Time::from_ps(300_000_000),
                    LinkRef::NodeLink { node: 0, plane: 0 },
                );
            let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
            let mut t = Time::ZERO;
            let mut log = Vec::new();
            for i in 0..20u8 {
                let d = rn.send(0, 1, i as u32 % 2, t, &[i; 2048]).unwrap();
                log.push((d.finished, d.plane, d.attempts));
                t = d.finished;
            }
            (log, rn.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn multi_hop_route_recovers_too() {
        let plan = FaultPlan::clean(13).with_transient_rate(0.5).unwrap();
        let mut rn = ResilientNetwork::new(Network::new(Topology::system256()), plan);
        let mut t = Time::ZERO;
        for i in 0..10u8 {
            // Inter-cluster: three crossbars per route.
            let d = rn.send(8, 127, 0, t, &[i; 256]).unwrap();
            assert_eq!(d.crc, Some(Message::new(vec![i; 256]).crc()));
            t = d.finished;
        }
        assert!(rn.stats().crc_failures > 0);
        assert_eq!(rn.stats().delivered_bytes, 10 * 256);
    }
}
