//! The PIO driver loops and the Figure 9–12 microbenchmarks.
//!
//! All benchmarks run on the [`crate::duplex::DuplexChannel`]-class
//! NI timing model; the numbers
//! they report are what the paper measured with real runs:
//!
//! * [`one_way_latency`] — half the ping-pong time (Figure 9),
//! * [`gap_at_saturation`] — steady-state message-sending time under
//!   back-to-back streaming (Figure 10, the LogP *gap*),
//! * [`unidirectional_bandwidth`] — one direction streaming (Figure 11),
//! * [`bidirectional_bandwidth`] — both nodes sending and receiving
//!   simultaneously with the alternating driver §5.2 describes
//!   (Figure 12).

use crate::config::CommConfig;
use pm_node::ni::NiDirection;
use pm_sim::time::{Duration, Time};

/// Time for one message of `bytes` to travel sender-CPU → receiver-CPU,
/// including connection setup and the user-level software path.
///
/// This is "half of the ping-pong time": the ping-pong is symmetric, so
/// we model one direction exactly.
///
/// # Examples
///
/// ```
/// use pm_comm::config::CommConfig;
/// use pm_comm::driver::one_way_latency;
///
/// let lat = one_way_latency(&CommConfig::powermanna(), 8);
/// assert!((2.0..3.5).contains(&lat.as_us_f64()));
/// ```
pub fn one_way_latency(config: &CommConfig, bytes: u32) -> Duration {
    let mut dir = NiDirection::new(config.ni);
    // Sender: software overhead, route setup, then PIO pushes of header +
    // payload + trailer in cache-line chunks. The receiver drains
    // eagerly, overlapping pops with arrivals; for messages longer than
    // the FIFO chain, flow control interleaves the two loops.
    let total = bytes + config.envelope_bytes();
    let mut cursor = Time::ZERO + config.sw_send + config.setup_time();
    let mut remaining = total;
    let mut drained = 0u32;
    let mut recv_cursor = Time::ZERO;
    while drained < total {
        if remaining > 0 {
            let chunk = remaining.min(config.line_bytes);
            if let Some(done) = dir.push(cursor, chunk) {
                cursor = done;
                remaining -= chunk;
                continue;
            }
        }
        let chunk = (total - drained).min(config.line_bytes);
        recv_cursor = dir.pop(recv_cursor, chunk).expect("pushes recorded above");
        drained += chunk;
    }
    let done = recv_cursor + dir.poll_cost() + config.sw_recv;
    done.since(Time::ZERO)
}

/// Steady-state time per message when the sender streams back-to-back
/// messages of `bytes` and the receiver keeps up (the LogP *gap*, the
/// "message-sending time at the network saturation point" of Figure 10).
pub fn gap_at_saturation(config: &CommConfig, bytes: u32) -> Duration {
    let messages = 64u32;
    let mut dir = NiDirection::new(config.ni);
    let total_per_msg = bytes + config.envelope_bytes();
    let mut send_cursor = Time::ZERO + config.sw_send + config.setup_time();
    let mut recv_cursor = Time::ZERO;
    let mut first_done = Time::ZERO;
    let mut last_done = Time::ZERO;
    for m in 0..messages {
        // Per-message software cost on the sending CPU.
        if m > 0 {
            send_cursor += config.sw_send;
        }
        let mut remaining = total_per_msg;
        while remaining > 0 {
            let chunk = remaining.min(config.line_bytes);
            match dir.push(send_cursor, chunk) {
                Some(done) => {
                    send_cursor = done;
                    remaining -= chunk;
                }
                None => {
                    // Flow control: drain one chunk on the receive side.
                    recv_cursor = dir
                        .pop(recv_cursor, config.line_bytes.min(total_per_msg))
                        .expect("sender is ahead of receiver");
                }
            }
        }
        if m == 0 {
            first_done = send_cursor;
        }
        last_done = send_cursor;
    }
    // Gap = spacing between send completions once the pipe is saturated.
    last_done.since(first_done) / (messages as u64 - 1)
}

/// Achieved one-direction bandwidth in Mbyte/s when streaming `bytes`-
/// sized messages (Figure 11).
pub fn unidirectional_bandwidth(config: &CommConfig, bytes: u32) -> f64 {
    // Enough messages to amortise setup; at least 256 KB of traffic.
    let messages = ((256 * 1024) / (bytes.max(1)) as u64).clamp(16, 4096) as u32;
    let mut dir = NiDirection::new(config.ni);
    let per_msg = bytes + config.envelope_bytes();
    let mut send_cursor = Time::ZERO + config.sw_send + config.setup_time();
    let mut recv_cursor = Time::ZERO;
    let mut received = 0u64;
    let total = per_msg as u64 * messages as u64;
    let mut sent = 0u64;
    let mut last_data = Time::ZERO;
    let mut msg_remaining = per_msg;
    let mut msgs_sent = 0u32;
    while received < total {
        if msgs_sent < messages {
            let chunk = msg_remaining.min(config.line_bytes);
            if let Some(done) = dir.push(send_cursor, chunk) {
                send_cursor = done;
                sent += chunk as u64;
                msg_remaining -= chunk;
                if msg_remaining == 0 {
                    msgs_sent += 1;
                    msg_remaining = per_msg;
                    send_cursor += config.sw_send;
                }
                continue;
            }
        }
        let chunk = ((total - received) as u32).min(config.line_bytes);
        let popped = dir.pop(recv_cursor, chunk).expect("sender ahead");
        recv_cursor = popped;
        received += chunk as u64;
        last_data = popped;
    }
    let _ = sent;
    let payload = bytes as u64 * messages as u64;
    payload as f64 / last_data.since(Time::ZERO).as_secs_f64() / 1e6
}

/// Aggregate bandwidth in Mbyte/s when both nodes stream `bytes`-sized
/// messages to each other simultaneously (Figure 12).
///
/// Each node runs the real driver loop: push up to
/// [`CommConfig::alternation_lines`] cache lines, then switch direction,
/// test the receive FIFO and drain what has arrived, switch back. The
/// switch costs software time; with the 256-byte FIFOs this overhead is
/// why the paper "did not obtain the expected bandwidth".
pub fn bidirectional_bandwidth(config: &CommConfig, bytes: u32) -> f64 {
    let messages = ((128 * 1024) / (bytes.max(1)) as u64).clamp(16, 2048) as u32;
    let per_msg = (bytes + config.envelope_bytes()) as u64;
    let total = per_msg * messages as u64;

    // Two independent directions; each node's CPU alternates between
    // feeding its outgoing direction and draining its incoming one.
    let mut out = [NiDirection::new(config.ni), NiDirection::new(config.ni)];

    struct NodeState {
        cpu: Time,
        sent: u64,
        received: u64,
        finished_recv: Time,
    }
    let mut nodes = [
        NodeState {
            cpu: Time::ZERO + config.sw_send + config.setup_time(),
            sent: 0,
            received: 0,
            finished_recv: Time::ZERO,
        },
        NodeState {
            cpu: Time::ZERO + config.sw_send + config.setup_time(),
            sent: 0,
            received: 0,
            finished_recv: Time::ZERO,
        },
    ];

    let line = config.line_bytes;
    let burst = (config.alternation_lines * line) as u64;
    loop {
        let done = nodes.iter().all(|n| n.sent >= total && n.received >= total);
        if done {
            break;
        }
        // Advance the node whose CPU is furthest behind.
        let i = if (nodes[0].sent < total || nodes[0].received < total)
            && (nodes[0].cpu <= nodes[1].cpu
                || (nodes[1].sent >= total && nodes[1].received >= total))
        {
            0
        } else {
            1
        };
        let (tx, rx) = if i == 0 {
            let (a, b) = out.split_at_mut(1);
            (&mut a[0], &mut b[0])
        } else {
            let (a, b) = out.split_at_mut(1);
            (&mut b[0], &mut a[0])
        };
        let peer_cpu = nodes[1 - i].cpu;
        let node = &mut nodes[i];

        // Send phase: up to `alternation_lines` cache lines.
        let mut burst_sent = 0u64;
        while node.sent < total && burst_sent < burst {
            let chunk = ((total - node.sent) as u32).min(line);
            match tx.push(node.cpu, chunk) {
                Some(done) => {
                    node.cpu = done;
                    node.sent += chunk as u64;
                    burst_sent += chunk as u64;
                }
                None => break, // FIFO full — turn around early.
            }
        }
        // Direction switch: test the receive FIFO.
        node.cpu += config.switch_cost + tx.poll_cost();
        // Receive phase: drain whatever has arrived (bounded by the same
        // burst size — the FIFO cannot hold more).
        let mut burst_recv = 0u64;
        while node.received < total && burst_recv < burst {
            let chunk = ((total - node.received) as u32).min(line);
            match rx.pop(node.cpu, chunk) {
                Some(done) => {
                    // Only wait for data that has actually arrived by now;
                    // if the pop had to wait, charge the wait.
                    node.cpu = done;
                    node.received += chunk as u64;
                    burst_recv += chunk as u64;
                    if node.received >= total {
                        node.finished_recv = done;
                    }
                }
                None => break,
            }
        }
        if burst_recv == 0 && burst_sent == 0 {
            // Neither direction progressed: wait for data in flight.
            let chunk = ((total - node.received) as u32).min(line);
            let wake = match rx.data_available(node.cpu, chunk) {
                Some(at) => at,
                // Peer has not produced yet; nudge past its CPU time.
                None => peer_cpu.max(node.cpu) + config.ni.status_poll_cost,
            };
            node.cpu = wake;
        }
        node.cpu += config.switch_cost;
    }

    let end = nodes[0].finished_recv.max(nodes[1].finished_recv);
    let payload = 2.0 * (bytes as u64 * messages as u64) as f64;
    payload / end.since(Time::ZERO).as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CommConfig {
        CommConfig::powermanna()
    }

    #[test]
    fn eight_byte_latency_matches_paper() {
        let lat = one_way_latency(&cfg(), 8).as_us_f64();
        // Paper: 2.75 us. Allow the calibration band.
        assert!((2.4..3.1).contains(&lat), "8-byte latency {lat:.2} us");
    }

    #[test]
    fn latency_grows_with_size() {
        let l8 = one_way_latency(&cfg(), 8);
        let l1k = one_way_latency(&cfg(), 1024);
        let l4k = one_way_latency(&cfg(), 4096);
        assert!(l8 < l1k && l1k < l4k);
        // 4 KB at 60 MB/s is ~68 us of wire time alone.
        assert!(l4k.as_us_f64() > 60.0);
    }

    #[test]
    fn gap_small_messages_is_cpu_bound() {
        let g = gap_at_saturation(&cfg(), 8).as_us_f64();
        // Dominated by the per-message software send cost (~1.1 us) plus
        // pushes; far below the one-way latency.
        assert!((1.0..2.5).contains(&g), "8-byte gap {g:.2} us");
        assert!(g < one_way_latency(&cfg(), 8).as_us_f64());
    }

    #[test]
    fn gap_large_messages_is_wire_bound() {
        let g = gap_at_saturation(&cfg(), 4096).as_us_f64();
        // 4 KB + envelope at 60 MB/s ≈ 68.5 us.
        assert!((60.0..80.0).contains(&g), "4-KB gap {g:.2} us");
    }

    #[test]
    fn unidirectional_saturates_at_link_rate() {
        let bw = unidirectional_bandwidth(&cfg(), 16 * 1024);
        assert!(
            (52.0..61.0).contains(&bw),
            "large-message unidirectional {bw:.1} MB/s should approach 60"
        );
    }

    #[test]
    fn unidirectional_small_messages_overhead_bound() {
        let bw = unidirectional_bandwidth(&cfg(), 16);
        assert!(
            bw < 15.0,
            "16-byte messages {bw:.1} MB/s should be overhead-bound"
        );
    }

    #[test]
    fn bidirectional_falls_short_of_double_unidirectional() {
        let uni = unidirectional_bandwidth(&cfg(), 16 * 1024);
        let bi = bidirectional_bandwidth(&cfg(), 16 * 1024);
        assert!(
            bi < 1.6 * uni,
            "Figure 12 effect: bidirectional {bi:.1} must fall short of 2x{uni:.1}"
        );
        assert!(
            bi > uni * 0.8,
            "bidirectional {bi:.1} should still beat one direction {uni:.1}"
        );
    }

    #[test]
    fn deeper_fifos_recover_bidirectional_bandwidth() {
        let shallow = bidirectional_bandwidth(&cfg(), 16 * 1024);
        let deep = bidirectional_bandwidth(&cfg().with_fifo_factor(8), 16 * 1024);
        assert!(
            deep > shallow * 1.2,
            "ablation X3: deeper FIFOs {deep:.1} should beat {shallow:.1}"
        );
    }

    #[test]
    fn more_hops_add_setup_latency() {
        let l1 = one_way_latency(&cfg(), 8);
        let l3 = one_way_latency(&cfg().with_hops(3), 8);
        let delta = l3.as_us_f64() - l1.as_us_f64();
        assert!(
            (0.3..0.8).contains(&delta),
            "two extra crossbars should add ~0.4-0.6 us, got {delta:.2}"
        );
    }

    #[test]
    fn results_are_deterministic() {
        let a = bidirectional_bandwidth(&cfg(), 4096);
        let b = bidirectional_bandwidth(&cfg(), 4096);
        assert_eq!(a, b);
    }
}
