//! EARTH-style multithreaded latency tolerance (§7 of the paper).
//!
//! "For the forerunner MANNA machine, the EARTH system was shown to
//! offer low communication cost close to the hardware limits. In a
//! cooperation project with the University of Delaware, EARTH is
//! currently being ported to the PowerMANNA machine."
//!
//! EARTH hides remote-access latency by switching between many light
//! fibers: a fiber issues a *split-phase* remote operation and yields;
//! the CPU runs other fibers until the response lands. This module
//! simulates that schedule over the measured PowerMANNA latencies, so
//! the repository covers the paper's stated future work: how much of the
//! node's throughput multithreading recovers when data is remote.

use crate::config::CommConfig;
use crate::driver;
use pm_sim::event::EventQueue;
use pm_sim::time::{Duration, Time};

/// EARTH runtime cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EarthConfig {
    /// Cost of switching to another ready fiber (EARTH's claim to fame:
    /// this is tens of cycles, not a kernel context switch).
    pub ctx_switch: Duration,
    /// Cost of issuing a split-phase remote operation (building the
    /// request token and handing it to the NI).
    pub issue_cost: Duration,
}

impl Default for EarthConfig {
    fn default() -> Self {
        Self::powermanna()
    }
}

impl EarthConfig {
    /// EARTH on PowerMANNA: ~40-cycle fiber switch, issue cost dominated
    /// by one cache-line PIO push.
    pub fn powermanna() -> Self {
        EarthConfig {
            ctx_switch: Duration::from_ns(220),
            issue_cost: Duration::from_ns(300),
        }
    }
}

/// Result of one latency-tolerance run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EarthRun {
    /// Fibers scheduled.
    pub fibers: usize,
    /// Split-phase remote operations completed.
    pub ops: u64,
    /// Total simulated time.
    pub elapsed: Duration,
    /// Fraction of the time the CPU was running fibers (vs idle waiting
    /// for responses).
    pub cpu_utilization: f64,
}

impl EarthRun {
    /// Remote operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed == Duration::ZERO {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Simulates `fibers` fibers, each performing `ops_per_fiber` rounds of
/// (`work` of local compute, then a split-phase remote load of
/// `remote_bytes`), on one CPU over the given communication stack.
///
/// # Panics
///
/// Panics if `fibers` or `ops_per_fiber` is zero.
///
/// # Examples
///
/// ```
/// use pm_comm::config::CommConfig;
/// use pm_comm::earth::{run_fibers, EarthConfig};
/// use pm_sim::time::Duration;
///
/// let one = run_fibers(&EarthConfig::powermanna(), &CommConfig::powermanna(),
///                      1, 50, Duration::from_ns(500), 64);
/// let many = run_fibers(&EarthConfig::powermanna(), &CommConfig::powermanna(),
///                       8, 50, Duration::from_ns(500), 64);
/// assert!(many.ops_per_sec() > 2.0 * one.ops_per_sec());
/// ```
pub fn run_fibers(
    earth: &EarthConfig,
    comm: &CommConfig,
    fibers: usize,
    ops_per_fiber: u64,
    work: Duration,
    remote_bytes: u32,
) -> EarthRun {
    assert!(fibers > 0, "need at least one fiber");
    assert!(ops_per_fiber > 0, "need at least one op per fiber");
    // Round trip of a split-phase read: request + response.
    let latency = driver::one_way_latency(comm, 8) + driver::one_way_latency(comm, remote_bytes);

    // Event = fiber id becoming ready.
    let mut q: EventQueue<usize> = EventQueue::new();
    for f in 0..fibers {
        q.schedule(Time::ZERO, f);
    }
    let mut remaining = vec![ops_per_fiber; fibers];
    let mut cpu = Time::ZERO;
    let mut busy = Duration::ZERO;
    let mut ops = 0u64;
    let mut last_done = Time::ZERO;

    while let Some((ready, fiber)) = q.pop() {
        if remaining[fiber] == 0 {
            continue;
        }
        let start = cpu.max(ready);
        let slice = earth.ctx_switch + work + earth.issue_cost;
        cpu = start + slice;
        busy += slice;
        remaining[fiber] -= 1;
        ops += 1;
        let response_at = cpu + latency;
        last_done = last_done.max(response_at);
        if remaining[fiber] > 0 {
            q.schedule(response_at, fiber);
        }
    }

    let elapsed = last_done.since(Time::ZERO);
    EarthRun {
        fibers,
        ops,
        elapsed,
        cpu_utilization: if elapsed == Duration::ZERO {
            0.0
        } else {
            busy.as_secs_f64() / elapsed.as_secs_f64()
        },
    }
}

/// Sweeps fiber counts and returns `(fibers, Mops/s)` pairs — the
/// latency-tolerance curve for experiment X8.
pub fn tolerance_curve(
    earth: &EarthConfig,
    comm: &CommConfig,
    max_fibers: usize,
    work: Duration,
    remote_bytes: u32,
) -> Vec<(usize, f64)> {
    (1..=max_fibers)
        .map(|f| {
            let run = run_fibers(earth, comm, f, 64, work, remote_bytes);
            (f, run.ops_per_sec() / 1e6)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EarthConfig, CommConfig) {
        (EarthConfig::powermanna(), CommConfig::powermanna())
    }

    #[test]
    fn single_fiber_is_latency_bound() {
        let (e, c) = setup();
        let work = Duration::from_ns(500);
        let run = run_fibers(&e, &c, 1, 32, work, 64);
        let latency = driver::one_way_latency(&c, 8) + driver::one_way_latency(&c, 64);
        let per_op = e.ctx_switch + work + e.issue_cost + latency;
        let expected = 1.0 / per_op.as_secs_f64();
        let measured = run.ops_per_sec();
        assert!(
            (measured / expected - 1.0).abs() < 0.05,
            "single fiber {measured:.0} vs latency bound {expected:.0}"
        );
        assert!(
            run.cpu_utilization < 0.25,
            "mostly idle: {:.2}",
            run.cpu_utilization
        );
    }

    #[test]
    fn many_fibers_hide_latency() {
        let (e, c) = setup();
        let work = Duration::from_ns(500);
        let one = run_fibers(&e, &c, 1, 64, work, 64);
        let many = run_fibers(&e, &c, 16, 64, work, 64);
        assert!(
            many.ops_per_sec() > 4.0 * one.ops_per_sec(),
            "16 fibers {:.0} should be >4x one fiber {:.0}",
            many.ops_per_sec(),
            one.ops_per_sec()
        );
        assert!(
            many.cpu_utilization > 0.9,
            "CPU should saturate: {:.2}",
            many.cpu_utilization
        );
    }

    #[test]
    fn throughput_saturates_at_cpu_bound() {
        let (e, c) = setup();
        let work = Duration::from_ns(500);
        let r16 = run_fibers(&e, &c, 16, 64, work, 64);
        let r32 = run_fibers(&e, &c, 32, 64, work, 64);
        // Once the CPU is saturated, more fibers add nothing.
        let gain = r32.ops_per_sec() / r16.ops_per_sec();
        assert!(
            (0.95..1.1).contains(&gain),
            "beyond saturation gain {gain:.2} should vanish"
        );
        // Saturation rate = 1 / per-slice CPU time.
        let slice = e.ctx_switch + work + e.issue_cost;
        let bound = 1.0 / slice.as_secs_f64();
        assert!(r32.ops_per_sec() <= bound * 1.01);
        assert!(r32.ops_per_sec() > bound * 0.9);
    }

    #[test]
    fn curve_is_monotone_then_flat() {
        let (e, c) = setup();
        let curve = tolerance_curve(&e, &c, 12, Duration::from_ns(400), 64);
        for w in curve.windows(2) {
            assert!(
                w[1].1 >= w[0].1 * 0.99,
                "tolerance curve should not regress: {:?}",
                curve
            );
        }
        assert_eq!(curve.len(), 12);
    }

    #[test]
    fn all_ops_complete() {
        let (e, c) = setup();
        let run = run_fibers(&e, &c, 5, 17, Duration::from_ns(100), 8);
        assert_eq!(run.ops, 5 * 17);
    }

    #[test]
    #[should_panic(expected = "at least one fiber")]
    fn zero_fibers_rejected() {
        let (e, c) = setup();
        run_fibers(&e, &c, 0, 1, Duration::ZERO, 8);
    }
}
