//! User-level communication for the PowerMANNA reproduction (§3.3, §4,
//! §5.2 of the paper).
//!
//! PowerMANNA has no NIC processor and no DMA: the node CPUs drive the
//! memory-mapped link interfaces directly. This crate implements that
//! software layer and the microbenchmarks of Figures 9–12:
//!
//! * [`config`] — the communication-stack cost model (route setup, the
//!   user-level software send/receive overheads, the direction-switch
//!   cost of the bidirectional driver).
//! * [`duplex`] — a full-duplex channel between two nodes: two
//!   [`pm_node::ni::NiDirection`]s plus functional messages with CRC.
//! * [`driver`] — the PIO driver loops: blocking send/receive, ping-pong,
//!   saturation streaming, and the 4-cache-line alternating bidirectional
//!   loop §5.2 describes.
//! * [`baselines`] — calibrated LogGP-style models of BIP and FM on the
//!   Myrinet/PentiumPro cluster the paper compares against (its own
//!   numbers are quoted from the literature, so ours are too).
//! * [`reliable`] — the recovery tiers over the CRC: capped
//!   stop-and-wait retransmission on one channel, and
//!   [`reliable::ResilientNetwork`] driving retransmission, plane
//!   failover and fault accounting over multi-hop routes.
//!
//! # Examples
//!
//! ```
//! use pm_comm::config::CommConfig;
//! use pm_comm::driver;
//!
//! let cfg = CommConfig::powermanna();
//! let lat = driver::one_way_latency(&cfg, 8);
//! // Figure 9: 8 bytes in 2.75 us.
//! assert!((2.0..3.5).contains(&lat.as_us_f64()));
//! ```

pub mod baselines;
pub mod config;
pub mod driver;
pub mod duplex;
pub mod earth;
pub mod mpi;
pub mod reliable;

pub use baselines::LoggpModel;
pub use config::CommConfig;
pub use duplex::{DuplexChannel, Message, RecvError};
pub use earth::{EarthConfig, EarthRun};
pub use mpi::MpiWorld;
pub use reliable::{
    DeliveryError, ReliabilityStats, ReliableChannel, ResilientNetwork, RetryPolicy,
};
