//! Property-based tests spanning the workspace's core data structures.
//!
//! These used to run under `proptest`; they are now driven by the
//! in-repo deterministic [`SimRng`] so the whole workspace builds and
//! tests with an empty cargo registry (see the "no external
//! dependencies" policy in DESIGN.md). Each property draws a fixed
//! number of pseudo-random cases from a fixed seed, so failures are
//! exactly reproducible — rerun the test, get the same cases.

use powermanna::isa::{Instr, Trace};
use powermanna::mem::{Access, Cache, CacheGeometry, HierarchyConfig, MemorySystem, MesiState};
use powermanna::net::fifo::TimedFifo;
use powermanna::net::topology::Topology;
use powermanna::node::crc::{crc16, Crc16};
use powermanna::sim::rng::SimRng;
use powermanna::sim::time::{Clock, Duration, Time};

/// One generator per property, derived from a property-specific tag so
/// adding cases to one test never shifts another test's inputs.
fn cases(tag: u64) -> SimRng {
    SimRng::seed_from(0x50776D_414E4E41 ^ tag)
}

/// Clock conversion never drifts: time_of_cycle is additive.
#[test]
fn clock_cycles_compose() {
    let mut rng = cases(1);
    for _ in 0..256 {
        let khz = rng.gen_range(1_000, 1_000_000);
        let a = rng.gen_range(0, 1_000_000);
        let b = rng.gen_range(0, 1_000_000);
        let clk = Clock::from_khz(khz);
        let sum = clk.time_of_cycle(a + b).as_ps() as i128;
        let parts = clk.duration_of(a).as_ps() as i128 + clk.duration_of(b).as_ps() as i128;
        // Rounded once vs twice: differ by at most one picosecond.
        assert!(
            (sum - parts).abs() <= 1,
            "khz={khz} a={a} b={b}: {sum} vs {parts}"
        );
    }
}

/// cycle_at inverts time_of_cycle.
#[test]
fn clock_cycle_roundtrip() {
    let mut rng = cases(2);
    for _ in 0..256 {
        let khz = rng.gen_range(1_000, 1_000_000);
        let n = rng.gen_range(0, 10_000_000);
        let clk = Clock::from_khz(khz);
        let t = clk.time_of_cycle(n);
        let back = clk.cycle_at(t);
        assert!(
            back == n || back == n.saturating_sub(1) || back == n + 1,
            "khz={khz} n={n} back={back}"
        );
    }
}

/// Duration arithmetic is associative over sums.
#[test]
fn duration_sum_order_free() {
    let mut rng = cases(3);
    for _ in 0..128 {
        let len = rng.gen_range(1, 20) as usize;
        let mut xs: Vec<u64> = (0..len).map(|_| rng.gen_range(0, 1_000_000_000)).collect();
        let fwd: Duration = xs.iter().map(|&x| Duration::from_ps(x)).sum();
        xs.reverse();
        let rev: Duration = xs.iter().map(|&x| Duration::from_ps(x)).sum();
        assert_eq!(fwd, rev);
    }
}

/// The FIFO's occupancy equals pushes minus pops at every probe point,
/// and never exceeds capacity when gated by space_available.
#[test]
fn fifo_occupancy_invariant() {
    let mut rng = cases(4);
    for _ in 0..64 {
        let n_ops = rng.gen_range(1, 200) as usize;
        let mut f = TimedFifo::new(256);
        let mut t = Time::ZERO;
        let mut level: i64 = 0;
        for _ in 0..n_ops {
            let kind = rng.gen_range(0, 2);
            let bytes = rng.gen_range(1, 65) as u32;
            t += Duration::from_ns(10);
            if kind == 0 {
                if let Some(at) = f.space_available(t, bytes) {
                    let at = at.max(t);
                    f.push(at, bytes);
                    t = at;
                    level += i64::from(bytes);
                }
            } else {
                let lvl = f.level(t);
                if lvl >= bytes {
                    f.pop(t, bytes);
                    level -= i64::from(bytes);
                }
            }
            assert!((0..=256).contains(&level));
            assert_eq!(i64::from(f.level(t)), level);
        }
    }
}

/// A cache never holds more lines than its capacity, and a probe after
/// fill always finds the line (until something evicts it).
#[test]
fn cache_capacity_invariant() {
    let mut rng = cases(5);
    for _ in 0..32 {
        let n_addrs = rng.gen_range(1, 300) as usize;
        let geometry = CacheGeometry::new(4096, 2, 64);
        let mut c = Cache::new(geometry);
        for _ in 0..n_addrs {
            let addr = rng.gen_range(0, 1_000_000);
            let base = geometry.line_base(addr);
            if c.lookup(base) == MesiState::Invalid {
                c.fill(base, MesiState::Exclusive);
            }
            assert!(c.resident_lines() as u64 <= geometry.size_bytes() / 64);
            assert!(c.probe(base) != MesiState::Invalid);
        }
    }
}

/// MESI single-writer invariant: after any access pattern from two
/// CPUs, a line is never Modified/Exclusive in both caches at once.
#[test]
fn mesi_single_writer() {
    let mut rng = cases(6);
    for _ in 0..32 {
        let n_ops = rng.gen_range(1, 120) as usize;
        let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(2));
        let mut t = Time::ZERO;
        for _ in 0..n_ops {
            let cpu = rng.gen_range(0, 2) as usize;
            let line = rng.gen_range(0, 4);
            let write = rng.gen_range(0, 2) == 1;
            let addr = line * 64;
            let access = if write {
                Access::write(addr)
            } else {
                Access::read(addr)
            };
            let r = mem.access(cpu, access, t);
            t = r.done_at;
        }
        // Validate by forcing a read on each line from each CPU: if both
        // caches believed they owned a line, interventions would exceed
        // the write count; instead we assert the model settles: every
        // line readable from both sides afterwards.
        for line in 0u64..4 {
            let r0 = mem.access(0, Access::read(line * 64), t);
            let r1 = mem.access(1, Access::read(line * 64), r0.done_at);
            t = r1.done_at;
        }
        assert!(mem.interventions() <= 200);
    }
}

/// CRC catches every single-bit corruption.
#[test]
fn crc_detects_single_bit() {
    let mut rng = cases(7);
    for _ in 0..128 {
        let len = rng.gen_range(1, 64) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0, 256) as u8).collect();
        let sum = crc16(&data);
        let mut bad = data.clone();
        let idx = rng.gen_range(0, 64) as usize % bad.len();
        let bit = rng.gen_range(0, 8) as u8;
        bad[idx] ^= 1 << bit;
        assert!(
            !Crc16::verify(&bad, sum),
            "flip at byte {idx} bit {bit} undetected"
        );
    }
}

/// CRC is stable under chunked computation.
#[test]
fn crc_chunking_invariant() {
    let mut rng = cases(8);
    for _ in 0..128 {
        let len = rng.gen_range(0, 256) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0, 256) as u8).collect();
        let split = (rng.gen_range(0, 256) as usize).min(data.len());
        let mut inc = Crc16::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        assert_eq!(inc.finish(), crc16(&data));
    }
}

/// Every node pair in the 256-processor system routes on both planes
/// with at most three crossbars, and routes are symmetric in length.
#[test]
fn system256_routing_properties() {
    let mut rng = cases(9);
    let topo = Topology::system256();
    for _ in 0..128 {
        let a = rng.gen_range(0, 128) as usize;
        let b = rng.gen_range(0, 128) as usize;
        if a == b {
            continue;
        }
        let plane = rng.gen_range(0, 2) as u32;
        let fwd = topo.route(a, b, plane).expect("route exists");
        let rev = topo.route(b, a, plane).expect("reverse route exists");
        assert!(fwd.crossbars() <= 3);
        assert_eq!(fwd.crossbars(), rev.crossbars());
    }
}

/// The deterministic RNG respects requested ranges.
#[test]
fn rng_range_property() {
    let mut rng = cases(10);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let lo = rng.gen_range(0, 1000);
        let span = rng.gen_range(1, 1000);
        let mut r = SimRng::seed_from(seed);
        for _ in 0..50 {
            let v = r.gen_range(lo, lo + span);
            assert!((lo..lo + span).contains(&v));
        }
    }
}

/// Trace statistics equal a recount over the instruction stream.
#[test]
fn trace_stats_match_recount() {
    let mut rng = cases(11);
    for _ in 0..64 {
        let n_loads = rng.gen_range(0, 40) as usize;
        let n_stores = rng.gen_range(0, 40) as usize;
        let mut instrs = Vec::new();
        for i in 0..n_loads {
            instrs.push(Instr::load(
                powermanna::isa::Reg(i as u16),
                powermanna::isa::VAddr(i as u64 * 8),
                8,
                None,
            ));
        }
        for i in 0..n_stores {
            instrs.push(Instr::store(
                powermanna::isa::Reg(i as u16),
                powermanna::isa::VAddr(i as u64 * 8),
                8,
            ));
        }
        let trace = Trace::from_instrs(instrs);
        assert_eq!(trace.stats().loads, n_loads as u64);
        assert_eq!(trace.stats().stores, n_stores as u64);
        assert_eq!(trace.stats().instrs, (n_loads + n_stores) as u64);
    }
}

/// Memory-system latency is monotone under contention: adding a second
/// CPU's traffic never makes the first CPU's identical access stream
/// complete earlier. (Not randomised: a fixed adversarial schedule.)
#[test]
fn contention_is_monotone() {
    let stream = |mem: &mut MemorySystem, cpu: usize| -> Time {
        let mut t = Time::ZERO;
        for i in 0..128u64 {
            let r = mem.access(cpu, Access::read((cpu as u64) << 30 | (i * 64)), t);
            t = r.done_at;
        }
        t
    };
    let mut solo = MemorySystem::new(HierarchyConfig::mpc620_node(2));
    let solo_done = stream(&mut solo, 0);

    let mut shared = MemorySystem::new(HierarchyConfig::mpc620_node(2));
    // CPU 1 floods the bus first.
    let _ = stream(&mut shared, 1);
    let contended_done = stream(&mut shared, 0);
    assert!(contended_done >= solo_done);
}

// --- Extended cross-crate properties ------------------------------------

use powermanna::comm::config::CommConfig;
use powermanna::comm::mpi::MpiWorld;
use powermanna::cpu::{Cpu, CpuConfig};
use powermanna::isa::parse_kernel;
use powermanna::net::crossbar::CrossbarConfig;
use powermanna::net::flitsim;

/// Executing a prefix of a trace never takes longer than the whole
/// trace (time is monotone in work).
#[test]
fn cpu_time_monotone_in_work() {
    let mut rng = cases(12);
    for _ in 0..24 {
        let n = rng.gen_range(2, 200) as usize;
        let cut = (rng.gen_range(1, 200) as usize).min(n - 1).max(1);
        let mut tb = powermanna::isa::TraceBuilder::new();
        for i in 0..n as u64 {
            tb.load((i * 72) % 65536, 8);
        }
        let full = tb.finish();
        let prefix: powermanna::isa::Trace = full.iter().take(cut).copied().collect();

        let run = |t: powermanna::isa::Trace| {
            let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(1));
            let mut cpu = Cpu::new(CpuConfig::mpc620());
            cpu.execute(t, &mut mem, 0).elapsed
        };
        assert!(run(prefix) <= run(full), "n={n} cut={cut}");
    }
}

/// The flit simulator conserves packets and payload for any traffic.
#[test]
fn flitsim_conserves_payload() {
    let mut rng = cases(13);
    for _ in 0..24 {
        let per_input = rng.gen_range(1, 8) as u32;
        let payload = rng.gen_range(1, 512) as u32;
        let seed = rng.next_u64();
        let cfg = CrossbarConfig::powermanna();
        let packets = flitsim::uniform_traffic(cfg, per_input, payload, seed);
        let r = flitsim::simulate(cfg, &packets);
        assert_eq!(r.completions.len(), packets.len());
        assert_eq!(r.payload_bytes, (packets.len() as u64) * u64::from(payload));
        assert!(r.completions.iter().all(|&c| c > Time::ZERO));
        // Aggregate throughput can never exceed all 16 links flat out.
        assert!(r.throughput_mbs() <= 16.0 * 60.5);
    }
}

/// MPI collectives: time grows (weakly) with message size.
#[test]
fn mpi_collectives_monotone_in_bytes() {
    let mut rng = cases(14);
    for _ in 0..32 {
        let n = rng.gen_range(2, 33) as usize;
        let small = rng.gen_range(1, 512) as u32;
        let extra = rng.gen_range(1, 4096) as u32;
        let cfg = CommConfig::powermanna();
        let mut w1 = MpiWorld::new(n, cfg);
        let t_small = w1.bcast(0, small);
        let mut w2 = MpiWorld::new(n, cfg);
        let t_big = w2.bcast(0, small + extra);
        assert!(t_big >= t_small, "n={n} small={small} extra={extra}");
    }
}

/// The kernel parser accepts everything the generator prints and
/// produces the same op counts.
#[test]
fn parser_roundtrips_generated_kernels() {
    let mut rng = cases(15);
    for _ in 0..64 {
        let loads = rng.gen_range(1, 20) as usize;
        let flops = rng.gen_range(0, 20) as usize;
        let mut text = String::new();
        for i in 0..loads {
            text.push_str(&format!("r{} = load {}\n", i + 1, i * 64));
        }
        for i in 0..flops {
            text.push_str(&format!("r{} = fadd r1, r1\n", 100 + i));
        }
        let t = parse_kernel(&text).expect("generated kernel is valid");
        assert_eq!(t.stats().loads, loads as u64);
        assert_eq!(t.stats().flops, flops as u64);
    }
}

/// Page placement is a bijection at page granularity: distinct pages
/// never collide, and offsets are preserved.
#[test]
fn page_placement_bijective() {
    use powermanna::mem::hierarchy::virt_to_phys;
    let mut rng = cases(16);
    for _ in 0..256 {
        let a = rng.gen_range(0, 1_000_000);
        let b = rng.gen_range(0, 1_000_000);
        let pa = virt_to_phys(a * 4096);
        let pb = virt_to_phys(b * 4096);
        if a != b {
            assert_ne!(pa / 4096, pb / 4096, "pages {a} and {b} collided");
        } else {
            assert_eq!(pa, pb);
        }
        assert_eq!(virt_to_phys(a * 4096 + 123), pa + 123);
    }
}
