//! Property-based tests spanning the workspace's core data structures.

use powermanna::isa::{Instr, Trace};
use powermanna::mem::{Access, Cache, CacheGeometry, HierarchyConfig, MemorySystem, MesiState};
use powermanna::net::fifo::TimedFifo;
use powermanna::net::topology::Topology;
use powermanna::node::crc::{crc16, Crc16};
use powermanna::sim::rng::SimRng;
use powermanna::sim::time::{Clock, Duration, Time};
use proptest::prelude::*;

proptest! {
    /// Clock conversion never drifts: time_of_cycle is additive.
    #[test]
    fn clock_cycles_compose(khz in 1_000u64..1_000_000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let clk = Clock::from_khz(khz);
        let sum = clk.time_of_cycle(a + b).as_ps() as i128;
        let parts = clk.duration_of(a).as_ps() as i128 + clk.duration_of(b).as_ps() as i128;
        // Rounded once vs twice: differ by at most one picosecond.
        prop_assert!((sum - parts).abs() <= 1, "{sum} vs {parts}");
    }

    /// cycle_at inverts time_of_cycle.
    #[test]
    fn clock_cycle_roundtrip(khz in 1_000u64..1_000_000, n in 0u64..10_000_000) {
        let clk = Clock::from_khz(khz);
        let t = clk.time_of_cycle(n);
        let back = clk.cycle_at(t);
        prop_assert!(back == n || back == n.saturating_sub(1) || back == n + 1);
    }

    /// Duration arithmetic is associative over sums.
    #[test]
    fn duration_sum_order_free(mut xs in proptest::collection::vec(0u64..1_000_000_000, 1..20)) {
        let fwd: Duration = xs.iter().map(|&x| Duration::from_ps(x)).sum();
        xs.reverse();
        let rev: Duration = xs.iter().map(|&x| Duration::from_ps(x)).sum();
        prop_assert_eq!(fwd, rev);
    }

    /// The FIFO's occupancy equals pushes minus pops at every probe point,
    /// and never exceeds capacity when gated by space_available.
    #[test]
    fn fifo_occupancy_invariant(ops in proptest::collection::vec((0u8..2, 1u32..65), 1..200)) {
        let mut f = TimedFifo::new(256);
        let mut t = Time::ZERO;
        let mut level: i64 = 0;
        for (kind, bytes) in ops {
            t = t + Duration::from_ns(10);
            if kind == 0 {
                if let Some(at) = f.space_available(t, bytes) {
                    let at = at.max(t);
                    f.push(at, bytes);
                    t = at;
                    level += i64::from(bytes);
                }
            } else {
                let lvl = f.level(t);
                if lvl >= bytes {
                    f.pop(t, bytes);
                    level -= i64::from(bytes);
                }
            }
            prop_assert!(level >= 0 && level <= 256);
            prop_assert_eq!(i64::from(f.level(t)), level);
        }
    }

    /// A cache never holds more lines than its capacity, and a probe after
    /// fill always finds the line (until something evicts it).
    #[test]
    fn cache_capacity_invariant(addrs in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let geometry = CacheGeometry::new(4096, 2, 64);
        let mut c = Cache::new(geometry);
        for addr in addrs {
            let base = geometry.line_base(addr);
            if c.lookup(base) == MesiState::Invalid {
                c.fill(base, MesiState::Exclusive);
            }
            prop_assert!(c.resident_lines() as u64 <= geometry.size_bytes() / 64);
            prop_assert!(c.probe(base) != MesiState::Invalid);
        }
    }

    /// MESI single-writer invariant: after any access pattern from two
    /// CPUs, a line is never Modified/Exclusive in both caches at once.
    #[test]
    fn mesi_single_writer(ops in proptest::collection::vec((0usize..2, 0u64..4, 0u8..2), 1..120)) {
        let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(2));
        let mut t = Time::ZERO;
        for (cpu, line, write) in ops {
            let addr = line * 64;
            let access = if write == 1 { Access::write(addr) } else { Access::read(addr) };
            let r = mem.access(cpu, access, t);
            t = r.done_at;
        }
        // Validate by forcing a read on each line from each CPU: if both
        // caches believed they owned a line, interventions would exceed
        // the write count; instead we assert the model settles: every
        // line readable from both sides afterwards.
        for line in 0u64..4 {
            let r0 = mem.access(0, Access::read(line * 64), t);
            let r1 = mem.access(1, Access::read(line * 64), r0.done_at);
            t = r1.done_at;
        }
        prop_assert!(mem.interventions() <= 200);
    }

    /// CRC catches every single-bit corruption.
    #[test]
    fn crc_detects_single_bit(data in proptest::collection::vec(any::<u8>(), 1..64), byte in 0usize..64, bit in 0u8..8) {
        let sum = crc16(&data);
        let mut bad = data.clone();
        let idx = byte % bad.len();
        bad[idx] ^= 1 << bit;
        prop_assert!(!Crc16::verify(&bad, sum));
    }

    /// CRC is stable under chunked computation.
    #[test]
    fn crc_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..256), split in 0usize..256) {
        let split = split.min(data.len());
        let mut inc = Crc16::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        prop_assert_eq!(inc.finish(), crc16(&data));
    }

    /// Every node pair in the 256-processor system routes on both planes
    /// with at most three crossbars, and routes are symmetric in length.
    #[test]
    fn system256_routing_properties(a in 0usize..128, b in 0usize..128, plane in 0u32..2) {
        prop_assume!(a != b);
        let topo = Topology::system256();
        let fwd = topo.route(a, b, plane).expect("route exists");
        let rev = topo.route(b, a, plane).expect("reverse route exists");
        prop_assert!(fwd.crossbars() <= 3);
        prop_assert_eq!(fwd.crossbars(), rev.crossbars());
    }

    /// The deterministic RNG respects requested ranges.
    #[test]
    fn rng_range_property(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            let v = rng.gen_range(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
    }

    /// Trace statistics equal a recount over the instruction stream.
    #[test]
    fn trace_stats_match_recount(n_loads in 0usize..40, n_stores in 0usize..40) {
        let mut instrs = Vec::new();
        for i in 0..n_loads {
            instrs.push(Instr::load(powermanna::isa::Reg(i as u16), powermanna::isa::VAddr(i as u64 * 8), 8, None));
        }
        for i in 0..n_stores {
            instrs.push(Instr::store(powermanna::isa::Reg(i as u16), powermanna::isa::VAddr(i as u64 * 8), 8));
        }
        let trace = Trace::from_instrs(instrs);
        prop_assert_eq!(trace.stats().loads, n_loads as u64);
        prop_assert_eq!(trace.stats().stores, n_stores as u64);
        prop_assert_eq!(trace.stats().instrs, (n_loads + n_stores) as u64);
    }
}

/// Memory-system latency is monotone under contention: adding a second
/// CPU's traffic never makes the first CPU's identical access stream
/// complete earlier. (Not a proptest: a fixed adversarial schedule.)
#[test]
fn contention_is_monotone() {
    let stream = |mem: &mut MemorySystem, cpu: usize| -> Time {
        let mut t = Time::ZERO;
        for i in 0..128u64 {
            let r = mem.access(cpu, Access::read((cpu as u64) << 30 | (i * 64)), t);
            t = r.done_at;
        }
        t
    };
    let mut solo = MemorySystem::new(HierarchyConfig::mpc620_node(2));
    let solo_done = stream(&mut solo, 0);

    let mut shared = MemorySystem::new(HierarchyConfig::mpc620_node(2));
    // CPU 1 floods the bus first.
    let _ = stream(&mut shared, 1);
    let contended_done = stream(&mut shared, 0);
    assert!(contended_done >= solo_done);
}

// --- Extended cross-crate properties ------------------------------------

use powermanna::comm::config::CommConfig;
use powermanna::comm::mpi::MpiWorld;
use powermanna::cpu::{Cpu, CpuConfig};
use powermanna::isa::parse_kernel;
use powermanna::net::crossbar::CrossbarConfig;
use powermanna::net::flitsim;

proptest! {
    /// Executing a prefix of a trace never takes longer than the whole
    /// trace (time is monotone in work).
    #[test]
    fn cpu_time_monotone_in_work(n in 2usize..200, cut in 1usize..200) {
        let cut = cut.min(n - 1);
        let mut tb = powermanna::isa::TraceBuilder::new();
        for i in 0..n as u64 {
            tb.load((i * 72) % 65536, 8);
        }
        let full = tb.finish();
        let prefix: powermanna::isa::Trace = full.iter().take(cut).copied().collect();

        let run = |t: powermanna::isa::Trace| {
            let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(1));
            let mut cpu = Cpu::new(CpuConfig::mpc620());
            cpu.execute(t, &mut mem, 0).elapsed
        };
        prop_assert!(run(prefix) <= run(full));
    }

    /// The flit simulator conserves packets and payload for any traffic.
    #[test]
    fn flitsim_conserves_payload(per_input in 1u32..8, payload in 1u32..512, seed in any::<u64>()) {
        let cfg = CrossbarConfig::powermanna();
        let packets = flitsim::uniform_traffic(cfg, per_input, payload, seed);
        let r = flitsim::simulate(cfg, &packets);
        prop_assert_eq!(r.completions.len(), packets.len());
        prop_assert_eq!(r.payload_bytes, (packets.len() as u64) * u64::from(payload));
        prop_assert!(r.completions.iter().all(|&c| c > Time::ZERO));
        // Aggregate throughput can never exceed all 16 links flat out.
        prop_assert!(r.throughput_mbs() <= 16.0 * 60.5);
    }

    /// MPI collectives: time grows (weakly) with message size, and the
    /// barrier is independent of payload entirely.
    #[test]
    fn mpi_collectives_monotone_in_bytes(n in 2usize..33, small in 1u32..512, extra in 1u32..4096) {
        let cfg = CommConfig::powermanna();
        let mut w1 = MpiWorld::new(n, cfg);
        let t_small = w1.bcast(0, small);
        let mut w2 = MpiWorld::new(n, cfg);
        let t_big = w2.bcast(0, small + extra);
        prop_assert!(t_big >= t_small);
    }

    /// The kernel parser accepts everything the generator prints and
    /// produces the same op counts.
    #[test]
    fn parser_roundtrips_generated_kernels(loads in 1usize..20, flops in 0usize..20) {
        let mut text = String::new();
        for i in 0..loads {
            text.push_str(&format!("r{} = load {}\n", i + 1, i * 64));
        }
        for i in 0..flops {
            text.push_str(&format!("r{} = fadd r1, r1\n", 100 + i));
        }
        let t = parse_kernel(&text).expect("generated kernel is valid");
        prop_assert_eq!(t.stats().loads, loads as u64);
        prop_assert_eq!(t.stats().flops, flops as u64);
    }

    /// Page placement is a bijection at page granularity: distinct pages
    /// never collide, and offsets are preserved.
    #[test]
    fn page_placement_bijective(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        use powermanna::mem::hierarchy::virt_to_phys;
        let pa = virt_to_phys(a * 4096);
        let pb = virt_to_phys(b * 4096);
        if a != b {
            prop_assert_ne!(pa / 4096, pb / 4096, "pages {} and {} collided", a, b);
        } else {
            prop_assert_eq!(pa, pb);
        }
        prop_assert_eq!(virt_to_phys(a * 4096 + 123), pa + 123);
    }
}
