//! Property-based tests spanning the workspace's core data structures.
//!
//! These used to run under `proptest`; they are now driven by the
//! in-repo deterministic [`SimRng`] so the whole workspace builds and
//! tests with an empty cargo registry (see the "no external
//! dependencies" policy in DESIGN.md). Each property draws a fixed
//! number of pseudo-random cases from a fixed seed, so failures are
//! exactly reproducible — rerun the test, get the same cases.

use powermanna::isa::{Instr, Trace};
use powermanna::mem::{Access, Cache, CacheGeometry, HierarchyConfig, MemorySystem, MesiState};
use powermanna::net::fifo::TimedFifo;
use powermanna::net::topology::Topology;
use powermanna::node::crc::{crc16, Crc16};
use powermanna::sim::rng::SimRng;
use powermanna::sim::time::{Clock, Duration, Time};

/// One generator per property, derived from a property-specific tag so
/// adding cases to one test never shifts another test's inputs.
fn cases(tag: u64) -> SimRng {
    SimRng::seed_from(0x50776D_414E4E41 ^ tag)
}

/// Clock conversion never drifts: time_of_cycle is additive.
#[test]
fn clock_cycles_compose() {
    let mut rng = cases(1);
    for _ in 0..256 {
        let khz = rng.gen_range(1_000, 1_000_000);
        let a = rng.gen_range(0, 1_000_000);
        let b = rng.gen_range(0, 1_000_000);
        let clk = Clock::from_khz(khz);
        let sum = clk.time_of_cycle(a + b).as_ps() as i128;
        let parts = clk.duration_of(a).as_ps() as i128 + clk.duration_of(b).as_ps() as i128;
        // Rounded once vs twice: differ by at most one picosecond.
        assert!(
            (sum - parts).abs() <= 1,
            "khz={khz} a={a} b={b}: {sum} vs {parts}"
        );
    }
}

/// cycle_at inverts time_of_cycle.
#[test]
fn clock_cycle_roundtrip() {
    let mut rng = cases(2);
    for _ in 0..256 {
        let khz = rng.gen_range(1_000, 1_000_000);
        let n = rng.gen_range(0, 10_000_000);
        let clk = Clock::from_khz(khz);
        let t = clk.time_of_cycle(n);
        let back = clk.cycle_at(t);
        assert!(
            back == n || back == n.saturating_sub(1) || back == n + 1,
            "khz={khz} n={n} back={back}"
        );
    }
}

/// Duration arithmetic is associative over sums.
#[test]
fn duration_sum_order_free() {
    let mut rng = cases(3);
    for _ in 0..128 {
        let len = rng.gen_range(1, 20) as usize;
        let mut xs: Vec<u64> = (0..len).map(|_| rng.gen_range(0, 1_000_000_000)).collect();
        let fwd: Duration = xs.iter().map(|&x| Duration::from_ps(x)).sum();
        xs.reverse();
        let rev: Duration = xs.iter().map(|&x| Duration::from_ps(x)).sum();
        assert_eq!(fwd, rev);
    }
}

/// The FIFO's occupancy equals pushes minus pops at every probe point,
/// and never exceeds capacity when gated by space_available.
#[test]
fn fifo_occupancy_invariant() {
    let mut rng = cases(4);
    for _ in 0..64 {
        let n_ops = rng.gen_range(1, 200) as usize;
        let mut f = TimedFifo::new(256);
        let mut t = Time::ZERO;
        let mut level: i64 = 0;
        for _ in 0..n_ops {
            let kind = rng.gen_range(0, 2);
            let bytes = rng.gen_range(1, 65) as u32;
            t += Duration::from_ns(10);
            if kind == 0 {
                if let Some(at) = f.space_available(t, bytes) {
                    let at = at.max(t);
                    f.push(at, bytes);
                    t = at;
                    level += i64::from(bytes);
                }
            } else {
                let lvl = f.level(t);
                if lvl >= bytes {
                    f.pop(t, bytes);
                    level -= i64::from(bytes);
                }
            }
            assert!((0..=256).contains(&level));
            assert_eq!(i64::from(f.level(t)), level);
        }
    }
}

/// A cache never holds more lines than its capacity, and a probe after
/// fill always finds the line (until something evicts it).
#[test]
fn cache_capacity_invariant() {
    let mut rng = cases(5);
    for _ in 0..32 {
        let n_addrs = rng.gen_range(1, 300) as usize;
        let geometry = CacheGeometry::new(4096, 2, 64);
        let mut c = Cache::new(geometry);
        for _ in 0..n_addrs {
            let addr = rng.gen_range(0, 1_000_000);
            let base = geometry.line_base(addr);
            if c.lookup(base) == MesiState::Invalid {
                c.fill(base, MesiState::Exclusive);
            }
            assert!(c.resident_lines() as u64 <= geometry.size_bytes() / 64);
            assert!(c.probe(base) != MesiState::Invalid);
        }
    }
}

/// MESI single-writer invariant: after any access pattern from two
/// CPUs, a line is never Modified/Exclusive in both caches at once.
#[test]
fn mesi_single_writer() {
    let mut rng = cases(6);
    for _ in 0..32 {
        let n_ops = rng.gen_range(1, 120) as usize;
        let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(2));
        let mut t = Time::ZERO;
        for _ in 0..n_ops {
            let cpu = rng.gen_range(0, 2) as usize;
            let line = rng.gen_range(0, 4);
            let write = rng.gen_range(0, 2) == 1;
            let addr = line * 64;
            let access = if write {
                Access::write(addr)
            } else {
                Access::read(addr)
            };
            let r = mem.access(cpu, access, t);
            t = r.done_at;
        }
        // Validate by forcing a read on each line from each CPU: if both
        // caches believed they owned a line, interventions would exceed
        // the write count; instead we assert the model settles: every
        // line readable from both sides afterwards.
        for line in 0u64..4 {
            let r0 = mem.access(0, Access::read(line * 64), t);
            let r1 = mem.access(1, Access::read(line * 64), r0.done_at);
            t = r1.done_at;
        }
        assert!(mem.interventions() <= 200);
    }
}

/// CRC catches every single-bit corruption.
#[test]
fn crc_detects_single_bit() {
    let mut rng = cases(7);
    for _ in 0..128 {
        let len = rng.gen_range(1, 64) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0, 256) as u8).collect();
        let sum = crc16(&data);
        let mut bad = data.clone();
        let idx = rng.gen_range(0, 64) as usize % bad.len();
        let bit = rng.gen_range(0, 8) as u8;
        bad[idx] ^= 1 << bit;
        assert!(
            !Crc16::verify(&bad, sum),
            "flip at byte {idx} bit {bit} undetected"
        );
    }
}

/// CRC is stable under chunked computation.
#[test]
fn crc_chunking_invariant() {
    let mut rng = cases(8);
    for _ in 0..128 {
        let len = rng.gen_range(0, 256) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0, 256) as u8).collect();
        let split = (rng.gen_range(0, 256) as usize).min(data.len());
        let mut inc = Crc16::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        assert_eq!(inc.finish(), crc16(&data));
    }
}

/// Every node pair in the 256-processor system routes on both planes
/// with at most three crossbars, and routes are symmetric in length.
#[test]
fn system256_routing_properties() {
    let mut rng = cases(9);
    let topo = Topology::system256();
    for _ in 0..128 {
        let a = rng.gen_range(0, 128) as usize;
        let b = rng.gen_range(0, 128) as usize;
        if a == b {
            continue;
        }
        let plane = rng.gen_range(0, 2) as u32;
        let fwd = topo.route(a, b, plane).expect("route exists");
        let rev = topo.route(b, a, plane).expect("reverse route exists");
        assert!(fwd.crossbars() <= 3);
        assert_eq!(fwd.crossbars(), rev.crossbars());
    }
}

/// The deterministic RNG respects requested ranges.
#[test]
fn rng_range_property() {
    let mut rng = cases(10);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let lo = rng.gen_range(0, 1000);
        let span = rng.gen_range(1, 1000);
        let mut r = SimRng::seed_from(seed);
        for _ in 0..50 {
            let v = r.gen_range(lo, lo + span);
            assert!((lo..lo + span).contains(&v));
        }
    }
}

/// Trace statistics equal a recount over the instruction stream.
#[test]
fn trace_stats_match_recount() {
    let mut rng = cases(11);
    for _ in 0..64 {
        let n_loads = rng.gen_range(0, 40) as usize;
        let n_stores = rng.gen_range(0, 40) as usize;
        let mut instrs = Vec::new();
        for i in 0..n_loads {
            instrs.push(Instr::load(
                powermanna::isa::Reg(i as u16),
                powermanna::isa::VAddr(i as u64 * 8),
                8,
                None,
            ));
        }
        for i in 0..n_stores {
            instrs.push(Instr::store(
                powermanna::isa::Reg(i as u16),
                powermanna::isa::VAddr(i as u64 * 8),
                8,
            ));
        }
        let trace = Trace::from_instrs(instrs);
        assert_eq!(trace.stats().loads, n_loads as u64);
        assert_eq!(trace.stats().stores, n_stores as u64);
        assert_eq!(trace.stats().instrs, (n_loads + n_stores) as u64);
    }
}

/// Memory-system latency is monotone under contention: adding a second
/// CPU's traffic never makes the first CPU's identical access stream
/// complete earlier. (Not randomised: a fixed adversarial schedule.)
#[test]
fn contention_is_monotone() {
    let stream = |mem: &mut MemorySystem, cpu: usize| -> Time {
        let mut t = Time::ZERO;
        for i in 0..128u64 {
            let r = mem.access(cpu, Access::read((cpu as u64) << 30 | (i * 64)), t);
            t = r.done_at;
        }
        t
    };
    let mut solo = MemorySystem::new(HierarchyConfig::mpc620_node(2));
    let solo_done = stream(&mut solo, 0);

    let mut shared = MemorySystem::new(HierarchyConfig::mpc620_node(2));
    // CPU 1 floods the bus first.
    let _ = stream(&mut shared, 1);
    let contended_done = stream(&mut shared, 0);
    assert!(contended_done >= solo_done);
}

// --- Extended cross-crate properties ------------------------------------

use powermanna::comm::config::CommConfig;
use powermanna::comm::mpi::MpiWorld;
use powermanna::cpu::{Cpu, CpuConfig};
use powermanna::isa::parse_kernel;
use powermanna::net::crossbar::CrossbarConfig;
use powermanna::net::flitsim;

/// Executing a prefix of a trace never takes longer than the whole
/// trace (time is monotone in work).
#[test]
fn cpu_time_monotone_in_work() {
    let mut rng = cases(12);
    for _ in 0..24 {
        let n = rng.gen_range(2, 200) as usize;
        let cut = (rng.gen_range(1, 200) as usize).min(n - 1).max(1);
        let mut tb = powermanna::isa::TraceBuilder::new();
        for i in 0..n as u64 {
            tb.load((i * 72) % 65536, 8);
        }
        let full = tb.finish();
        let prefix: powermanna::isa::Trace = full.iter().take(cut).copied().collect();

        let run = |t: powermanna::isa::Trace| {
            let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(1));
            let mut cpu = Cpu::new(CpuConfig::mpc620());
            cpu.execute(t, &mut mem, 0).elapsed
        };
        assert!(run(prefix) <= run(full), "n={n} cut={cut}");
    }
}

/// The flit simulator conserves packets and payload for any traffic.
#[test]
fn flitsim_conserves_payload() {
    let mut rng = cases(13);
    for _ in 0..24 {
        let per_input = rng.gen_range(1, 8) as u32;
        let payload = rng.gen_range(1, 512) as u32;
        let seed = rng.next_u64();
        let cfg = CrossbarConfig::powermanna();
        let packets = flitsim::uniform_traffic(cfg, per_input, payload, seed);
        let r = flitsim::simulate(cfg, &packets);
        assert_eq!(r.completions.len(), packets.len());
        assert_eq!(r.payload_bytes, (packets.len() as u64) * u64::from(payload));
        assert!(r.completions.iter().all(|&c| c > Time::ZERO));
        // Aggregate throughput can never exceed all 16 links flat out.
        assert!(r.throughput_mbs() <= 16.0 * 60.5);
    }
}

/// MPI collectives: time grows (weakly) with message size.
#[test]
fn mpi_collectives_monotone_in_bytes() {
    let mut rng = cases(14);
    for _ in 0..32 {
        let n = rng.gen_range(2, 33) as usize;
        let small = rng.gen_range(1, 512) as u32;
        let extra = rng.gen_range(1, 4096) as u32;
        let cfg = CommConfig::powermanna();
        let mut w1 = MpiWorld::new(n, cfg);
        let t_small = w1.bcast(0, small);
        let mut w2 = MpiWorld::new(n, cfg);
        let t_big = w2.bcast(0, small + extra);
        assert!(t_big >= t_small, "n={n} small={small} extra={extra}");
    }
}

/// The kernel parser accepts everything the generator prints and
/// produces the same op counts.
#[test]
fn parser_roundtrips_generated_kernels() {
    let mut rng = cases(15);
    for _ in 0..64 {
        let loads = rng.gen_range(1, 20) as usize;
        let flops = rng.gen_range(0, 20) as usize;
        let mut text = String::new();
        for i in 0..loads {
            text.push_str(&format!("r{} = load {}\n", i + 1, i * 64));
        }
        for i in 0..flops {
            text.push_str(&format!("r{} = fadd r1, r1\n", 100 + i));
        }
        let t = parse_kernel(&text).expect("generated kernel is valid");
        assert_eq!(t.stats().loads, loads as u64);
        assert_eq!(t.stats().flops, flops as u64);
    }
}

// --- Memory-system invariants (pm-mem) ----------------------------------

use powermanna::mem::dram::{Dram, DramConfig};
use powermanna::mem::tlb::{Tlb, TlbConfig};

/// After any random access stream from any number of CPUs, every
/// touched line is in a legal MESI configuration across the caches:
/// `check_coherence` validates single-writer, no-stale-sharer and
/// L1⊆L2 inclusion per line.
#[test]
fn mesi_states_stay_legal_under_random_streams() {
    let mut rng = cases(17);
    for cpus in [2usize, 4] {
        for _ in 0..16 {
            let n_ops = rng.gen_range(50, 400) as usize;
            let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(cpus));
            let mut t = Time::ZERO;
            let mut touched = Vec::new();
            for _ in 0..n_ops {
                let cpu = rng.gen_range(0, cpus as u64) as usize;
                // A small hot set so lines migrate between caches a lot.
                let addr = rng.gen_range(0, 32) * 64;
                let access = if rng.gen_range(0, 2) == 1 {
                    Access::write(addr)
                } else {
                    Access::read(addr)
                };
                t = mem.access(cpu, access, t).done_at;
                touched.push(addr);
            }
            touched.sort_unstable();
            touched.dedup();
            for addr in touched {
                mem.check_coherence(addr)
                    .unwrap_or_else(|e| panic!("cpus={cpus}: {e}"));
            }
        }
    }
}

/// For a fully-associative LRU TLB with a fixed entry count, growing
/// the page size never loses hits on the same address stream: larger
/// pages are unions of smaller ones, so every reuse interval contains
/// at most as many distinct large pages as small ones (the stack
/// distance can only shrink).
#[test]
fn tlb_hits_monotone_in_page_size() {
    let mut rng = cases(18);
    for _ in 0..24 {
        // Random-walk stream with page-scale locality.
        let n_ops = rng.gen_range(200, 2000) as usize;
        let mut addr: u64 = rng.gen_range(0, 1 << 24);
        let stream: Vec<u64> = (0..n_ops)
            .map(|_| {
                if rng.gen_range(0, 4) == 0 {
                    addr = rng.gen_range(0, 1 << 24); // jump
                } else {
                    addr += rng.gen_range(0, 4096); // local walk
                }
                addr
            })
            .collect();

        let hits_with_pages = |page_bytes: u32| -> u64 {
            let mut tlb = Tlb::new(TlbConfig {
                entries: 64,
                ways: 64, // fully associative: LRU is a stack algorithm
                page_bytes,
                miss_penalty: Duration::from_ns(150),
            });
            for &a in &stream {
                tlb.translate(a);
            }
            tlb.stats().hits
        };

        let mut prev = hits_with_pages(1 << 12);
        for shift in [13u32, 14, 16] {
            let next = hits_with_pages(1 << shift);
            assert!(
                next >= prev,
                "hits dropped from {prev} to {next} when pages grew to 2^{shift}"
            );
            prev = next;
        }
    }
}

/// The DRAM bank-conflict counter agrees with a shadow recount that
/// tracks per-bank busy-until times, and obeys the obvious bounds.
#[test]
fn dram_bank_conflicts_match_shadow_recount() {
    let mut rng = cases(19);
    for cfg in [
        DramConfig::powermanna(),
        DramConfig::pc_sdram(),
        DramConfig::sun_ultra(),
    ] {
        let n_ops = rng.gen_range(100, 600) as usize;
        let mut dram = Dram::new(cfg);
        let mut busy_until = vec![Time::ZERO; cfg.banks as usize];
        let mut shadow = 0u64;
        let mut t = Time::ZERO;
        for _ in 0..n_ops {
            // Sometimes advance time, sometimes burst at the same instant.
            if rng.gen_range(0, 3) == 0 {
                t += Duration::from_ns(rng.gen_range(0, 300));
            }
            let addr = rng.gen_range(0, 1 << 20);
            let bank = dram.bank_of(addr) as usize;
            if busy_until[bank] > t {
                shadow += 1;
            }
            let (start, ready) = dram.access(addr, t);
            busy_until[bank] = start + cfg.bank_busy;
            assert!(start >= t && ready > start);
        }
        assert_eq!(dram.bank_conflicts(), shadow, "shadow recount disagrees");
        assert!(dram.bank_conflicts() <= dram.accesses());
        dram.reset();
        assert_eq!(dram.bank_conflicts(), 0, "reset must clear the counter");
    }
}

/// Closed-form bank-conflict cases: a same-instant burst of `n`
/// accesses to one bank serialises as `n - 1` conflicts, while a burst
/// spread across distinct banks (the interleaving working as designed)
/// has none.
#[test]
fn dram_bank_conflict_bursts() {
    let cfg = DramConfig::powermanna();
    let stride = u64::from(cfg.interleave_bytes);

    let mut same = Dram::new(cfg);
    let n = 7u64;
    for i in 0..n {
        // Same bank: step by a full interleave round.
        same.access(i * stride * u64::from(cfg.banks), Time::ZERO);
    }
    assert_eq!(same.bank_conflicts(), n - 1);

    let mut spread = Dram::new(cfg);
    for b in 0..u64::from(cfg.banks) {
        spread.access(b * stride, Time::ZERO);
    }
    assert_eq!(spread.bank_conflicts(), 0);
}

// --- Stop-wire flow control (pm-net) ------------------------------------

use powermanna::net::crossbar::CrossbarConfig as XbarConfig;
use powermanna::net::flitsim::Backpressure;
use powermanna::net::stopwire::{self, StopWireConfig, StopWireEngine};

/// §3.2 losslessness, as a property: under arbitrary random
/// backpressure schedules the PowerMANNA link delivers every byte
/// offered and the receiver FIFO never exceeds its 32-word (256-byte)
/// bound — the stop wire alone prevents overflow.
#[test]
fn stop_wire_is_lossless_and_bounded() {
    let mut rng = cases(20);
    let c = StopWireConfig::powermanna();
    for _ in 0..200 {
        let bytes = rng.gen_range(1, 8192);
        let start = rng.gen_range(0, 500);
        let count = rng.gen_range(0, 30) as u32;
        let windows = stopwire::random_windows(&mut rng, start + bytes * 4 + 1, count, 1500);
        for engine in [StopWireEngine::PerFlit, StopWireEngine::Batched] {
            let s = stopwire::stream(engine, c, start, bytes, &windows);
            assert_eq!(s.delivered, bytes, "{engine:?}: flit dropped");
            assert!(
                s.max_occupancy <= 256,
                "{engine:?}: occupancy {} exceeds the 32-word FIFO",
                s.max_occupancy
            );
            assert!(s.max_occupancy <= c.headroom_needed());
        }
    }
}

/// The backpressured crossbar conserves packets and payload for any
/// traffic pattern and stall schedule, and throttled runs never beat
/// the unobstructed ones.
#[test]
fn flitsim_conserves_payload_under_backpressure() {
    let mut rng = cases(21);
    let cfg = XbarConfig::powermanna();
    for _ in 0..8 {
        let per_input = rng.gen_range(1, 4) as u32;
        let payload = rng.gen_range(16, 400) as u32;
        let packets = flitsim::uniform_traffic(cfg, per_input, payload, rng.next_u64());
        let windows = (0..cfg.ports)
            .map(|_| {
                let count = rng.gen_range(1, 10) as u32;
                stopwire::random_windows(&mut rng, 40_000, count, 3000)
            })
            .collect();
        let bp = Backpressure {
            stop: StopWireConfig::powermanna(),
            engine: StopWireEngine::Batched,
            windows,
        };
        let free = flitsim::simulate(cfg, &packets);
        let mut sim = flitsim::FlitSim::new();
        let r = sim.run_with_backpressure(cfg, &packets, &bp);
        assert_eq!(r.completions.len(), packets.len());
        assert_eq!(r.payload_bytes, (packets.len() as u64) * u64::from(payload));
        assert!(r.completions.iter().all(|&c| c > Time::ZERO));
        assert!(
            r.finished_at >= free.finished_at,
            "backpressure finished earlier than the free run"
        );
    }
}

/// End-to-end route backpressure, checked against ground truth: a
/// *joint* tick-by-tick simulation of every FIFO on the route evolving
/// together (payload identity tracked per byte) must deliver every
/// byte exactly once, in order — and the compositional
/// `stopwire::stream_route` (per-segment streams chained through gate
/// windows) must reproduce that joint simulation exactly: finish
/// ticks, per-segment stall counts and occupancy bounds.
#[test]
fn route_backpressure_never_loses_or_reorders_bytes() {
    use std::collections::VecDeque;
    let mut rng = cases(22);
    for case in 0..60 {
        let n = rng.gen_range(1, 5) as usize;
        let segments: Vec<StopWireConfig> = (0..n)
            .map(|_| {
                // Composable geometry: resume_threshold > stop_lag, as
                // stream_route demands of multi-segment routes.
                let fifo_bytes = rng.gen_range(32, 513) as u32;
                let stop_lag = rng.gen_range(0, 9) as u32;
                let max_stop = fifo_bytes - stop_lag - 1;
                let stop_threshold =
                    rng.gen_range(u64::from(stop_lag) + 2, u64::from(max_stop) + 1) as u32;
                let resume_threshold =
                    rng.gen_range(u64::from(stop_lag) + 1, u64::from(stop_threshold)) as u32;
                StopWireConfig {
                    fifo_bytes,
                    stop_threshold,
                    resume_threshold,
                    stop_lag,
                }
            })
            .collect();
        let start_tick = rng.gen_range(0, 500);
        let bytes = rng.gen_range(1, 4000);
        let count = rng.gen_range(0, 16) as u32;
        let stalls = stopwire::random_windows(&mut rng, start_tick + bytes * 3 + 10, count, 800);

        // --- Joint simulation: one shared timeline, all FIFOs at once.
        // Per tick, segments advance in route order (a byte pushed into
        // a FIFO can be popped by the next hop the same tick — wormhole
        // cut-through), then the destination drains unless stalled,
        // then every wire re-evaluates on end-of-tick occupancy.
        let lag: Vec<usize> = segments.iter().map(|c| c.stop_lag as usize + 1).collect();
        let mut rings: Vec<Vec<bool>> = lag.iter().map(|&l| vec![false; l]).collect();
        let mut stops = vec![false; n];
        let mut fifos: Vec<VecDeque<u64>> = vec![VecDeque::new(); n];
        let mut sent = vec![0u64; n];
        let mut stalled = vec![0u64; n];
        let mut max_occ = vec![0u32; n];
        let mut seg_finish = vec![start_tick; n];
        let mut delivered_ids: Vec<u64> = Vec::with_capacity(bytes as usize);
        let mut window = 0usize;
        let mut k = start_tick;
        while (delivered_ids.len() as u64) < bytes {
            assert!(k < start_tick + 1_000_000, "case {case}: joint sim wedged");
            for i in 0..n {
                let gate = rings[i][(k as usize) % lag[i]];
                if sent[i] < bytes {
                    if gate {
                        stalled[i] += 1;
                    } else {
                        // The sender pops the upstream FIFO (the source
                        // mints the next payload byte).
                        let byte = if i == 0 {
                            Some(sent[0])
                        } else {
                            let b = fifos[i - 1].pop_front();
                            if b.is_some() {
                                seg_finish[i - 1] = k;
                            }
                            b
                        };
                        if let Some(b) = byte {
                            fifos[i].push_back(b);
                            sent[i] += 1;
                        }
                    }
                }
            }
            while window < stalls.len() && stalls[window].1 <= k {
                window += 1;
            }
            let dst_stalled =
                window < stalls.len() && stalls[window].0 <= k && k < stalls[window].1;
            if !dst_stalled {
                if let Some(b) = fifos[n - 1].pop_front() {
                    seg_finish[n - 1] = k;
                    delivered_ids.push(b);
                }
            }
            for i in 0..n {
                let occ = fifos[i].len() as u32;
                if occ >= segments[i].stop_threshold {
                    stops[i] = true;
                } else if occ <= segments[i].resume_threshold {
                    stops[i] = false;
                }
                max_occ[i] = max_occ[i].max(occ);
                rings[i][(k as usize) % lag[i]] = stops[i];
            }
            k += 1;
        }

        // Ground truth: lossless and in order.
        assert_eq!(delivered_ids.len() as u64, bytes, "case {case}: lost bytes");
        for (i, &b) in delivered_ids.iter().enumerate() {
            assert_eq!(b, i as u64, "case {case}: byte reordered or duplicated");
        }
        // The compositional engine reproduces the joint simulation.
        let flow = stopwire::stream_route(
            StopWireEngine::Batched,
            &segments,
            start_tick,
            bytes,
            &stalls,
        );
        assert_eq!(flow.delivered, bytes, "case {case}");
        assert_eq!(
            flow.finish_tick,
            seg_finish[n - 1],
            "case {case}: finish tick diverges from the joint simulation"
        );
        for i in 0..n {
            assert_eq!(
                flow.per_segment[i].finish_tick, seg_finish[i],
                "case {case}: segment {i} finish tick"
            );
            assert_eq!(
                flow.per_segment[i].stalled_ticks, stalled[i],
                "case {case}: segment {i} stalled ticks"
            );
            assert_eq!(
                flow.per_segment[i].max_occupancy, max_occ[i],
                "case {case}: segment {i} peak occupancy"
            );
            assert!(
                max_occ[i] <= segments[i].fifo_bytes,
                "case {case}: overflow"
            );
        }
    }
}

/// Page placement is a bijection at page granularity: distinct pages
/// never collide, and offsets are preserved.
#[test]
fn page_placement_bijective() {
    use powermanna::mem::hierarchy::virt_to_phys;
    let mut rng = cases(16);
    for _ in 0..256 {
        let a = rng.gen_range(0, 1_000_000);
        let b = rng.gen_range(0, 1_000_000);
        let pa = virt_to_phys(a * 4096);
        let pb = virt_to_phys(b * 4096);
        if a != b {
            assert_ne!(pa / 4096, pb / 4096, "pages {a} and {b} collided");
        } else {
            assert_eq!(pa, pb);
        }
        assert_eq!(virt_to_phys(a * 4096 + 123), pa + 123);
    }
}

/// A fault plan's schedule and transient decisions are functions of the
/// seed alone: same seed, same plan; different seed, different draws.
#[test]
fn fault_plans_are_seed_deterministic() {
    use powermanna::net::fault::FaultPlan;
    let mut rng = cases(17);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let nodes = rng.gen_range(2, 256) as usize;
        let count = rng.gen_range(1, 20) as u32;
        let horizon = Duration::from_us(rng.gen_range(1, 10_000));
        let plan = |s: u64| {
            FaultPlan::clean(s)
                .with_transient_rate(0.25)
                .unwrap()
                .random_node_link_downs(nodes, count, horizon)
        };
        let a = plan(seed);
        assert_eq!(a, plan(seed), "schedule must replay byte-identically");
        assert_eq!(a.schedule().len(), count as usize);
        assert!(
            a.schedule().windows(2).all(|w| w[0].at <= w[1].at),
            "schedule is sorted by death time"
        );
        let b = plan(seed ^ 0xD00D);
        assert_ne!(a.schedule(), b.schedule(), "seed must matter");
    }
}

/// Every single-bit flip is caught by the CRC-16: directly on random
/// payloads, and end to end through the multi-hop resilient transport,
/// which must deliver every payload intact regardless of fault rate.
#[test]
fn single_bit_flips_never_slip_past_the_crc() {
    use powermanna::comm::duplex::Message;
    let mut rng = cases(18);
    for case in 0..256 {
        let len = rng.gen_range(1, 512) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0, 256) as u8).collect();
        let mut msg = Message::new(payload);
        assert!(msg.verify());
        let byte = rng.gen_range(0, len as u64) as usize;
        let bit = rng.gen_range(0, 8) as u8;
        msg.corrupt_bit(byte, bit);
        assert!(
            !msg.verify(),
            "case {case}: flip at byte {byte} bit {bit} slipped past crc16"
        );
    }
}

/// End-to-end over a three-crossbar route: with half of all
/// transmissions corrupted, the resilient transport still delivers
/// every payload with its exact CRC, burning retransmissions to do it.
#[test]
fn multi_hop_transport_survives_heavy_corruption() {
    use powermanna::comm::duplex::Message;
    use powermanna::comm::reliable::ResilientNetwork;
    use powermanna::net::fault::FaultPlan;
    use powermanna::net::network::Network;

    let plan = FaultPlan::clean(0xB17F11B)
        .with_transient_rate(0.5)
        .unwrap();
    let mut rn = ResilientNetwork::new(Network::new(Topology::system256()), plan);
    let mut rng = cases(19);
    let mut t = Time::ZERO;
    for seq in 0..40u64 {
        let len = rng.gen_range(16, 2048) as usize;
        let mut payload = vec![0u8; len];
        payload[..8].copy_from_slice(&seq.to_le_bytes());
        // Inter-cluster pair: the route crosses three crossbars.
        let d = rn.send(8, 127, 0, t, &payload).expect("retries succeed");
        assert_eq!(
            d.crc,
            Some(Message::new(payload).crc()),
            "message {seq} arrived corrupted or out of order"
        );
        assert!(d.finished > t, "time must advance");
        t = d.finished;
    }
    let s = rn.stats();
    assert!(s.crc_failures > 0, "rate 0.5 must corrupt something: {s:?}");
    assert_eq!(s.transmissions, s.messages + s.crc_failures);
    assert_eq!(s.retries_exhausted, 0);
}

/// The ISSUE acceptance bar: a seeded plan that kills a primary-plane
/// link mid-run completes *all* transfers via the secondary plane with
/// zero payload loss and no reordering.
#[test]
fn plane_failover_loses_and_reorders_nothing() {
    use powermanna::comm::duplex::Message;
    use powermanna::comm::reliable::ResilientNetwork;
    use powermanna::net::fault::{FaultPlan, LinkRef};
    use powermanna::net::network::Network;

    let plan = FaultPlan::clean(0x0FA1_10E4).kill_link(
        Time::from_ps(400_000_000),
        LinkRef::NodeLink { node: 0, plane: 0 },
    );
    let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
    let mut t = Time::ZERO;
    let mut deliveries = Vec::new();
    for seq in 0..24u64 {
        let mut payload = vec![0u8; 4096];
        payload[..8].copy_from_slice(&seq.to_le_bytes());
        let d = rn
            .send(0, 1, 0, t, &payload)
            .expect("secondary plane carries it");
        assert_eq!(
            d.crc,
            Some(Message::new(payload).crc()),
            "transfer {seq} lost or swapped"
        );
        t = d.finished;
        deliveries.push(d);
    }
    let s = rn.stats();
    assert_eq!(s.link_downs, 1);
    assert!(s.failovers >= 1, "the death must force failovers: {s:?}");
    assert_eq!(s.delivered_bytes, 24 * 4096, "zero payload loss");
    assert_eq!(s.retries_exhausted, 0);
    // Delivery order is program order: times strictly increase.
    assert!(deliveries.windows(2).all(|w| w[0].finished < w[1].finished));
    // Once the link dies, every remaining transfer rides plane 1.
    let first = deliveries
        .iter()
        .position(|d| d.plane == 1)
        .expect("failover");
    assert!(deliveries[..first].iter().all(|d| d.plane == 0));
    assert!(deliveries[first..].iter().all(|d| d.plane == 1));
}

/// A single dead mesh link never partitions the grid: every pair still
/// connects, detours are deterministic, and only a full cut yields
/// `Unreachable`.
#[test]
fn mesh_survives_any_single_link_death() {
    use powermanna::net::mesh::{Mesh, MeshConfig};
    let mut rng = cases(20);
    for _ in 0..32 {
        // Pick a random edge of the 4x4 grid: right or down neighbour.
        let a = rng.gen_range(0, 16) as u32;
        let right_ok = a % 4 != 3;
        let down_ok = a < 12;
        let b = match (right_ok, down_ok) {
            (true, true) => {
                if rng.gen_bool(0.5) {
                    a + 1
                } else {
                    a + 4
                }
            }
            (true, false) => a + 1,
            (false, true) => a + 4,
            // Node 15 has only left/up edges; kill the one to node 14.
            (false, false) => a - 1,
        };
        let mk = || {
            let mut m = Mesh::new(MeshConfig::powermanna_parts(4, 4));
            m.fail_link(a, b);
            m
        };
        let mut mesh = mk();
        for src in 0..16u32 {
            for dst in 0..16u32 {
                if src == dst {
                    continue;
                }
                let mut c = mesh
                    .open(src, dst, Time::ZERO)
                    .unwrap_or_else(|e| panic!("{src}->{dst} with {a}-{b} dead: {e}"));
                let done = c.transfer(c.ready_at(), 64).finished;
                c.close(&mut mesh, done);
            }
        }
        // Same dead link, same pairs: the detour count replays exactly.
        let reroutes = mesh.reroutes();
        let mut again = mk();
        for src in 0..16u32 {
            for dst in 0..16u32 {
                if src == dst {
                    continue;
                }
                let mut c = again.open(src, dst, Time::ZERO).unwrap();
                let done = c.transfer(c.ready_at(), 64).finished;
                c.close(&mut again, done);
            }
        }
        assert_eq!(again.reroutes(), reroutes);
    }
}

/// The X8 quick artifact is byte-identical run to run — the golden in
/// ci.sh diffs cleanly because nothing in the fault layer is
/// time-of-day or address dependent.
#[test]
fn x8_quick_csv_is_reproducible() {
    use powermanna::machine::experiments::find;
    use powermanna::sim::metrics::MetricRegistry;
    let csv =
        || (find("faults").expect("registered").run)(true, &mut MetricRegistry::new()).to_csv();
    assert_eq!(csv(), csv());
}

/// Poisson inter-arrival gaps average to `payload / offered_rate`.
/// Sample-mean std error at 40k draws is ~0.5% of the mean, so a 5%
/// band never flakes while still catching an off-by-`duty` or
/// off-by-`1e3` rate bug.
#[test]
fn traffic_poisson_gap_mean_matches_offered_rate() {
    use powermanna::workloads::traffic::{TrafficConfig, TrafficGen, TrafficPattern};
    let mut rng = cases(40);
    for _ in 0..4 {
        let rate = rng.gen_range(30, 960) as f64 * 1e6;
        let cfg = TrafficConfig {
            nodes: 8,
            tenants: 512,
            pattern: TrafficPattern::Poisson,
            offered_bytes_per_s: rate,
            payload: 4096,
            messages: 40_000,
            seed: rng.gen_range(0, u64::MAX),
        };
        let expect = cfg.mean_gap_ps();
        let last = TrafficGen::new(cfg.clone()).last().expect("messages > 0");
        let mean = last.at.as_ps() as f64 / cfg.messages as f64;
        let err = (mean - expect).abs() / expect;
        assert!(err < 0.05, "rate={rate}: mean {mean} vs {expect} ({err})");
    }
}

/// Bursty arrivals land only inside the on-windows, and the duty-cycle
/// rate boost conserves the long-run offered rate.
#[test]
fn traffic_bursty_respects_duty_cycle_and_conserves_rate() {
    use powermanna::workloads::traffic::{TrafficConfig, TrafficGen, TrafficPattern};
    let mut rng = cases(41);
    for _ in 0..4 {
        let duty_percent = rng.gen_range(10, 90) as u32;
        let period = Duration::from_us_f64(rng.gen_range(50, 400) as f64);
        let cfg = TrafficConfig {
            nodes: 8,
            tenants: 512,
            pattern: TrafficPattern::Bursty {
                period,
                duty_percent,
            },
            offered_bytes_per_s: 240e6,
            payload: 4096,
            messages: 40_000,
            seed: rng.gen_range(0, u64::MAX),
        };
        let on = period.as_ps() * u64::from(duty_percent) / 100;
        let mut last = 0u64;
        let mut count = 0u64;
        for m in TrafficGen::new(cfg.clone()) {
            assert!(
                m.at.as_ps() % period.as_ps() < on,
                "arrival at {} outside the on-window (duty {duty_percent}%)",
                m.at.as_ps()
            );
            last = m.at.as_ps();
            count += 1;
        }
        // The square wave conserves the long-run rate: the mean gap over
        // the whole run matches the Poisson mean within sampling noise.
        let mean = last as f64 / count as f64;
        let expect = cfg.mean_gap_ps();
        let err = (mean - expect).abs() / expect;
        assert!(
            err < 0.05,
            "duty={duty_percent}%: mean {mean} vs {expect} ({err})"
        );
    }
}

/// Hotspot traffic concentrates close to the configured fraction on the
/// hot node while every other destination stays near the uniform share.
#[test]
fn traffic_hotspot_concentrates_on_the_hot_node() {
    use powermanna::workloads::traffic::{TrafficConfig, TrafficGen, TrafficPattern};
    let nodes = 8u32;
    let hot = 3u32;
    let percent = 60u32;
    let cfg = TrafficConfig {
        nodes,
        tenants: 512,
        pattern: TrafficPattern::Hotspot { hot, percent },
        offered_bytes_per_s: 240e6,
        payload: 4096,
        messages: 40_000,
        seed: 0x0905_7071,
    };
    let mut per_dst = vec![0u64; nodes as usize];
    let mut total = 0u64;
    for m in TrafficGen::new(cfg) {
        per_dst[m.dst as usize] += 1;
        total += 1;
    }
    // Aimed messages (60%) hit the hot node unless homed there (1/8 of
    // tenants); unaimed ones add a uniform 1/7 share of the rest.
    let aimed = f64::from(percent) / 100.0;
    let hot_share = aimed * (7.0 / 8.0) + (1.0 - aimed + aimed / 8.0) / 7.0;
    let got = per_dst[hot as usize] as f64 / total as f64;
    assert!(
        (got - hot_share).abs() < 0.02,
        "hot share {got} vs expected {hot_share}"
    );
    // Everyone else splits the remainder roughly evenly.
    let cold_share = (1.0 - hot_share) / 7.0;
    for (d, &n) in per_dst.iter().enumerate() {
        if d as u32 == hot {
            continue;
        }
        let got = n as f64 / total as f64;
        assert!(
            (got - cold_share).abs() < 0.02,
            "node {d} share {got} vs expected {cold_share}"
        );
    }
}

/// The same config replays the same byte-exact stream; a different seed
/// diverges. This is the invariant the X12 golden CSV rests on.
#[test]
fn traffic_stream_is_byte_exact_per_seed() {
    use powermanna::workloads::traffic::{Message, TrafficConfig, TrafficGen, TrafficPattern};
    let mut rng = cases(43);
    for pattern in [
        TrafficPattern::Poisson,
        TrafficPattern::Bursty {
            period: Duration::from_us_f64(100.0),
            duty_percent: 25,
        },
        TrafficPattern::Hotspot {
            hot: 5,
            percent: 80,
        },
        TrafficPattern::UniformAllToAll,
    ] {
        let cfg = TrafficConfig {
            nodes: 8,
            tenants: 2048,
            pattern,
            offered_bytes_per_s: 480e6,
            payload: 4096,
            messages: 5_000,
            seed: rng.gen_range(0, u64::MAX),
        };
        let a: Vec<Message> = TrafficGen::new(cfg.clone()).collect();
        let b: Vec<Message> = TrafficGen::new(cfg.clone()).collect();
        assert_eq!(a, b, "{pattern:?}: same seed must replay byte-exact");
        let mut other = cfg.clone();
        other.seed = cfg.seed.wrapping_add(1);
        let c: Vec<Message> = TrafficGen::new(other).collect();
        assert_ne!(a, c, "{pattern:?}: a different seed must diverge");
    }
}

/// Every route the hierarchical permutation networks hand out respects
/// the architectural bound: at most three crossbars between any pair of
/// nodes, on both the 256-processor system and the scaled 1024-node
/// hierarchy.
#[test]
fn hierarchical_routes_stay_within_three_crossbars() {
    let mut rng = cases(44);
    for topo in [Topology::system256(), Topology::system1024()] {
        let nodes = topo.nodes();
        for _ in 0..128 {
            let src = rng.gen_range(0, nodes as u64) as usize;
            let mut dst = rng.gen_range(0, nodes as u64) as usize;
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            for plane in 0..2 {
                let r = topo
                    .route(src, dst, plane)
                    .expect("hierarchy connects every pair on both planes");
                assert!(
                    r.crossbars() <= 3,
                    "{src}->{dst} plane {plane}: {} crossbars",
                    r.crossbars()
                );
            }
        }
    }
}

/// The duplicated planes share no hardware: for any pair, the plane-0
/// and plane-1 routes traverse disjoint crossbar sets, so a whole-plane
/// failure can never sever both.
#[test]
fn plane_routes_are_crossbar_disjoint() {
    let mut rng = cases(45);
    for topo in [Topology::system256(), Topology::system1024()] {
        let nodes = topo.nodes();
        for _ in 0..128 {
            let src = rng.gen_range(0, nodes as u64) as usize;
            let mut dst = rng.gen_range(0, nodes as u64) as usize;
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            let r0 = topo.route(src, dst, 0).expect("plane-0 route");
            let r1 = topo.route(src, dst, 1).expect("plane-1 route");
            for h0 in &r0.hops {
                for h1 in &r1.hops {
                    assert_ne!(
                        h0.xbar, h1.xbar,
                        "{src}->{dst}: planes share crossbar {}",
                        h0.xbar
                    );
                }
            }
        }
    }
}

/// A worm that is both corrupted *and* late is dropped exactly once and
/// counted in every ledger exactly once. The scenario pins a sojourn
/// budget below the minimum service time (so every served worm is late)
/// and a 0.9 transient rate (so most also corrupt out after the retry
/// cap) — the overlap the drop path used to mishandle is the common
/// case here, and byte conservation breaks if any message is dropped
/// twice or skipped.
#[test]
fn corrupted_and_late_worms_drop_exactly_once() {
    use powermanna::machine::traffic::{run_scenario, ScenarioConfig, ScenarioTopology};
    use powermanna::net::fault::{FaultPlan, TransientInjector};
    use powermanna::net::flitsim::{self, FlitSim};
    use powermanna::net::CrossbarConfig;
    use powermanna::workloads::traffic::TrafficPattern;

    let mut rng = cases(46);
    let mut late_total = 0u64;
    let mut crc_total = 0u64;
    for _ in 0..8 {
        let seed = rng.next_u64();
        let cfg = ScenarioConfig {
            topology: ScenarioTopology::Cluster8Xbar,
            pattern: TrafficPattern::Poisson,
            tenants: 64,
            messages: 200,
            payload: 4096,
            offered_load: 1.2,
            // A 4096-byte worm needs ~68 us on the wire alone, so
            // nothing served can be on time.
            deadline: Duration::from_us_f64(30.0),
            seed,
            faults: Some(FaultPlan::clean(seed).with_transient_rate(0.9).unwrap()),
        };
        let report = run_scenario(&cfg, None);
        assert!(
            report.conserves_bytes(),
            "byte conservation broke: {report:?}"
        );
        assert_eq!(
            report.offered_messages,
            report.delivered_messages + report.dropped_messages + report.inflight_messages,
            "message conservation broke: {report:?}"
        );
        // Every served worm was late, so nothing is delivered or left
        // in flight: all offered bytes drop, each exactly once.
        assert_eq!(report.delivered_messages, 0);
        assert_eq!(report.inflight_messages, 0);
        assert_eq!(report.dropped_bytes, report.offered_bytes);
        assert!(report.late_messages <= report.dropped_messages);
        late_total += report.late_messages;
        crc_total += report.crc_failures;
    }
    // The overlap actually occurred: worms were served late, and the
    // injector corrupted attempts, in the same runs.
    assert!(late_total > 0, "no worm was ever served late");
    assert!(crc_total > 0, "the injector never corrupted a worm");

    // The flit-level filter agrees: on-time goodput is monotone in the
    // deadline, never exceeds clean goodput, and a corrupted-and-late
    // worm counts zero once — never negative, never twice.
    let cfg = CrossbarConfig::powermanna();
    let packets = flitsim::hotspot_traffic(cfg, 4, 2048);
    let plan = FaultPlan::clean(0xC0DE).with_transient_rate(0.5).unwrap();
    let mut inj = TransientInjector::new(&plan);
    let mut sim = FlitSim::new();
    let (result, corrupted) = sim.run_with_faults(cfg, &packets, &mut inj);
    let clean = result.goodput_mbs(&packets, &corrupted);
    let mut prev = 0.0f64;
    for us in [1u64, 50, 200, 1_000, 10_000_000] {
        let on_time = result.on_time_goodput_mbs(&packets, &corrupted, Duration::from_us(us));
        assert!(on_time >= prev, "on-time goodput must grow with the budget");
        assert!(
            on_time <= clean + 1e-9,
            "on-time goodput exceeded clean goodput"
        );
        prev = on_time;
    }
    // With an effectively infinite budget the two filters coincide.
    assert!((prev - clean).abs() < 1e-9);
}

/// A single link death mid-batch never loses or duplicates a payload,
/// and per-source deliveries stay in injection order: the resilient
/// loop retransmits severed worms over the surviving plane, and the
/// source's stop-and-wait serialisation survives the failover.
#[test]
fn resilient_death_never_loses_or_reorders() {
    use powermanna::net::fault::{FaultPlan, LinkRef};
    use powermanna::net::routesim::{ResilienceConfig, RouteSim, Worm};

    let t = Topology::system256();
    let nodes = t.nodes() as u64;
    let mut sim = RouteSim::new(&t);
    let mut rng = cases(40);
    for case in 0..8u64 {
        let src = rng.gen_range(0, nodes) as usize;
        let dst = (src + rng.gen_range(1, nodes) as usize) % nodes as usize;
        let worms: Vec<Worm> = (0..8u64)
            .map(|i| Worm {
                src,
                dst,
                plane: 0,
                payload: 1024 + 512 * (i as u32 % 4),
                inject_at: Time::ZERO + Duration::from_us(5 * i),
            })
            .collect();
        // Kill one of the source's two cables at a random instant while
        // the batch is in flight; the other plane survives, so every
        // payload must still arrive, exactly once, in order.
        let plane = rng.gen_range(0, 2) as u32;
        let at = Time::ZERO + Duration::from_us(rng.gen_range(0, 200));
        let plan =
            FaultPlan::clean(0x0DD + case).kill_link(at, LinkRef::NodeLink { node: src, plane });
        let r = sim
            .run_resilient(&worms, &plan, &ResilienceConfig::default())
            .expect("plan names a live link");
        assert_eq!(r.stats.dropped, 0, "case {case}: payload lost");
        assert_eq!(r.stats.delivered, worms.len() as u64, "case {case}");
        assert!((r.availability() - 1.0).abs() < 1e-12, "case {case}");
        let mut last = Time::ZERO;
        for (i, o) in r.outcomes.iter().enumerate() {
            let d = o.delivered().expect("nothing was dropped");
            assert!(
                d.finished > last,
                "case {case}: worm {i} delivered out of order"
            );
            last = d.finished;
        }
    }
}

/// On a fault-free batch the watchdog scans but never fires, the health
/// tables stay empty, and every worm delivers on its first attempt —
/// the self-healing layer is pure overhead-free observation when
/// nothing is wrong.
#[test]
fn resilient_watchdog_is_silent_on_clean_runs() {
    use powermanna::net::fault::FaultPlan;
    use powermanna::net::routesim::{
        permutation_worms, ResilienceConfig, RouteSim, WatchdogConfig,
    };

    let t = Topology::system256();
    let mut sim = RouteSim::new(&t);
    let worms = permutation_worms(16, 8, 4096, 0, Time::ZERO);
    // A tight scan period guarantees the watchdog actually ran many
    // times before the batch drained.
    let cfg = ResilienceConfig {
        watchdog: WatchdogConfig {
            scan_period: Duration::from_us(50),
            ..WatchdogConfig::default()
        },
        ..ResilienceConfig::default()
    };
    let r = sim
        .run_resilient(&worms, &FaultPlan::clean(0x51), &cfg)
        .expect("clean plan is always valid");
    assert!(r.stats.scans > 0, "the watchdog never scanned");
    assert_eq!(r.stats.recoveries, 0);
    assert_eq!(r.stats.orphan_reclaims, 0);
    assert_eq!(r.stats.failed_opens, 0);
    assert_eq!(r.stats.severed, 0);
    assert_eq!(r.stats.quarantines, 0);
    assert_eq!(r.stats.corrupted, 0);
    assert_eq!(r.stats.dropped, 0);
    assert_eq!(r.stats.transmissions, r.stats.offered);
    for (i, o) in r.outcomes.iter().enumerate() {
        let d = o.delivered().expect("clean run delivers everything");
        assert_eq!(d.attempts, 1, "worm {i} retried on a clean run");
    }
    for src in 0..t.nodes() {
        assert!(
            sim.health_table(src).is_empty(),
            "node {src} suspects a link on a clean run"
        );
    }
}

/// The health table converges on exactly the dead links and nothing
/// else: with both of a destination's cables cut, the source learns
/// precisely those two link keys from failed opens alone, while traffic
/// to healthy destinations adds no suspects.
#[test]
fn resilient_health_table_converges_on_the_dead_links() {
    use powermanna::net::fault::{FaultPlan, LinkRef};
    use powermanna::net::routesim::{ResilienceConfig, RouteSim, Worm, WormOutcome};

    let t = Topology::system256();
    let mut sim = RouteSim::new(&t);
    let dead_dst = 127;
    // Every equivalent route to a destination ends on the same node
    // link, so candidate 0's last key IS the plane's dead link key.
    let dead_key = |plane: u32| {
        let route = &t.equivalent_routes(0, dead_dst, plane, &Default::default())[0];
        *t.route_link_keys(route).last().expect("routes have hops")
    };
    let mut expected = [dead_key(0), dead_key(1)];
    expected.sort_unstable();

    let plan = FaultPlan::clean(3)
        .kill_link(
            Time::ZERO,
            LinkRef::NodeLink {
                node: dead_dst,
                plane: 0,
            },
        )
        .kill_link(
            Time::ZERO,
            LinkRef::NodeLink {
                node: dead_dst,
                plane: 1,
            },
        );
    let worms = vec![
        Worm {
            src: 0,
            dst: dead_dst,
            plane: 0,
            payload: 1024,
            inject_at: Time::ZERO,
        },
        Worm {
            src: 0,
            dst: 126,
            plane: 0,
            payload: 1024,
            inject_at: Time::ZERO,
        },
    ];
    let cfg = ResilienceConfig::default();
    let r = sim.run_resilient(&worms, &plan, &cfg).expect("plan valid");
    let max_attempts = cfg.retry.max_attempts;
    assert_eq!(
        r.outcomes[0],
        WormOutcome::Dropped {
            attempts: max_attempts
        },
        "an unreachable destination exhausts every attempt"
    );
    assert!(r.outcomes[1].delivered().is_some(), "healthy dst delivers");
    let mut suspects: Vec<_> = sim.health_table(0).suspects().collect();
    suspects.sort_unstable();
    assert_eq!(
        suspects, expected,
        "the source must suspect exactly the two dead cables"
    );
}

/// Repair plus quarantine lapse fully restores clean behaviour: after
/// the dead uplink comes back and its quarantine expires, a later worm
/// re-probes it, reinstates it, and its delivery is bit-identical to
/// the same worm under a never-faulted plan.
#[test]
fn resilient_repair_restores_clean_behaviour() {
    use powermanna::net::fault::{FaultPlan, LinkRef};
    use powermanna::net::routesim::{ResilienceConfig, RoutePolicy, RouteSim, Worm};

    let t = Topology::system256();
    let mut sim = RouteSim::new(&t);
    // Candidate 0's uplink into the middle stage for the 0 -> 127 pair.
    let route = &t.equivalent_routes(0, 127, 0, &Default::default())[0];
    let (xbar, port) = t.route_link_keys(route)[1];
    let faulted = FaultPlan::clean(9)
        .kill_link(Time::ZERO, LinkRef::XbarPort { xbar, port })
        .repair_link(
            Time::ZERO + Duration::from_us(100),
            LinkRef::XbarPort { xbar, port },
        );
    // Oblivious keeps candidate choice independent of accumulated
    // conflict counts, so the faulted and clean runs pick identical
    // paths once the health table is clean again.
    let cfg = ResilienceConfig {
        policy: RoutePolicy::Oblivious,
        ..ResilienceConfig::default()
    };
    let worms = vec![
        // Wave 1 probes the dead uplink, learns it, reroutes.
        Worm {
            src: 0,
            dst: 127,
            plane: 0,
            payload: 1024,
            inject_at: Time::ZERO + Duration::from_us(1),
        },
        // Wave 2 arrives after the repair AND the quarantine lapse.
        Worm {
            src: 0,
            dst: 127,
            plane: 0,
            payload: 1024,
            inject_at: Time::ZERO + Duration::from_us(1500),
        },
    ];
    let r_faulted = sim
        .run_resilient(&worms, &faulted, &cfg)
        .expect("plan valid");
    let r_clean = sim
        .run_resilient(&worms, &FaultPlan::clean(9), &cfg)
        .expect("clean plan valid");

    let wave1 = r_faulted.outcomes[0].delivered().expect("wave 1 reroutes");
    assert!(wave1.rerouted, "wave 1 must have dodged the dead uplink");
    let wave2_faulted = r_faulted.outcomes[1].delivered().expect("wave 2 delivers");
    assert_eq!(wave2_faulted.attempts, 1, "the re-probe must succeed");
    assert!(!wave2_faulted.rerouted, "wave 2 is back on candidate 0");
    assert_eq!(r_faulted.stats.repairs, 1);
    assert_eq!(
        r_faulted.stats.reinstatements, 1,
        "wave 2's delivery must clear the suspect entry"
    );
    assert_eq!(
        r_faulted.outcomes[1], r_clean.outcomes[1],
        "post-repair delivery must be bit-identical to the clean run"
    );
    assert!(
        sim.health_table(0).is_empty(),
        "no suspects may outlive the clean rerun"
    );
}
