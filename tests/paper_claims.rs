//! The paper's headline claims, asserted against the simulator.
//!
//! Each test pins one sentence of the evaluation (§5) or architecture
//! sections (§2–3) to a measurable check. These are the integration-level
//! "shape" guarantees the reproduction stands on; EXPERIMENTS.md records
//! the measured numbers.

use powermanna::comm::baselines::LoggpModel;
use powermanna::comm::config::CommConfig;
use powermanna::comm::driver;
use powermanna::machine::experiments::headline_checks;
use powermanna::machine::hintrun::run_hint;
use powermanna::machine::matmultrun::{measure_single, speedup};
use powermanna::machine::systems;
use powermanna::net::network::Network;
use powermanna::net::topology::Topology;
use powermanna::sim::time::Time;
use powermanna::workloads::hint::HintType;
use powermanna::workloads::matmult::MatMultVersion;

#[test]
fn headline_checks_pass() {
    for (name, ok, detail) in headline_checks() {
        assert!(ok, "{name}: {detail}");
    }
}

/// §5.2: "8 bytes are transferred in 2.75 µs, whereas BIP takes 6.4 µs
/// and FM 9.2 µs."
#[test]
fn figure9_short_message_ordering() {
    let pm = driver::one_way_latency(&CommConfig::powermanna(), 8).as_us_f64();
    let bip = LoggpModel::bip().one_way_latency(8).as_us_f64();
    let fm = LoggpModel::fm().one_way_latency(8).as_us_f64();
    assert!((2.3..3.3).contains(&pm), "PowerMANNA 8B {pm:.2} us");
    assert!((6.1..6.7).contains(&bip), "BIP 8B {bip:.2} us");
    assert!((9.0..9.4).contains(&fm), "FM 8B {fm:.2} us");
}

/// §5.2: "PowerMANNA's performance is limited by its current network
/// technology to 60 Mbyte/s unidirectional single-link bandwidth."
#[test]
fn figure11_link_limits() {
    let cfg = CommConfig::powermanna();
    let pm = driver::unidirectional_bandwidth(&cfg, 65536);
    assert!((52.0..60.5).contains(&pm), "PM saturation {pm:.1} MB/s");
    // Myrinet's PCI-limited 132 MB/s headroom: BIP passes PowerMANNA.
    let cross = LoggpModel::bip().unidirectional_bandwidth(65536);
    assert!(
        cross > pm,
        "BIP large-message {cross:.1} must exceed {pm:.1}"
    );
}

/// §5.2: "Apparently, PowerMANNA suffers from too small FIFOs in the
/// link interface" — and deeper FIFOs recover the loss.
#[test]
fn figure12_fifo_bottleneck_and_fix() {
    let base = CommConfig::powermanna();
    let uni = driver::unidirectional_bandwidth(&base, 16384);
    let bi = driver::bidirectional_bandwidth(&base, 16384);
    assert!(
        bi < 1.7 * uni,
        "bidirectional {bi:.1} should fall short of 2x{uni:.1}"
    );
    let deep = driver::bidirectional_bandwidth(&base.with_fifo_factor(8), 16384);
    assert!(
        deep > bi * 1.2,
        "deeper FIFOs should recover bandwidth: {deep:.1} vs {bi:.1}"
    );
}

/// §5.1.2: "performance for PowerMANNA exactly doubles when running the
/// benchmark on both processors of the node."
#[test]
fn figure8_powermanna_scales_ideally() {
    for version in [MatMultVersion::Naive, MatMultVersion::Transposed] {
        let s = speedup(&systems::powermanna(), 128, version);
        assert!(
            (1.9..=2.05).contains(&s),
            "PowerMANNA {version:?} speedup {s:.2}"
        );
    }
}

/// §5.1.1: the naive/transposed gap on PowerMANNA is "a factor of
/// approx. 6 for large matrices".
#[test]
fn figure7_naive_transposed_gap() {
    let pm = systems::powermanna();
    let naive = measure_single(&pm, 384, MatMultVersion::Naive).mflops;
    let trans = measure_single(&pm, 384, MatMultVersion::Transposed).mflops;
    let ratio = trans / naive;
    assert!(
        (4.0..10.0).contains(&ratio),
        "gap {ratio:.1} should be around 6"
    );
}

/// §5.1.1 (Figure 6): for DOUBLE, PowerMANNA leads the clock-matched
/// Pentium while caches are in effect; the SUN trails both.
#[test]
fn figure6_double_cache_region_ordering() {
    let budget = 512 * 1024;
    let pm = run_hint(&systems::powermanna(), HintType::Double, budget);
    let pc = run_hint(&systems::pentium_180(), HintType::Double, budget);
    let sun = run_hint(&systems::sun_ultra(), HintType::Double, budget);
    assert!(
        pm.peak_quips() > pc.peak_quips(),
        "PM {:.0} vs PC {:.0}",
        pm.peak_quips(),
        pc.peak_quips()
    );
    assert!(
        pc.peak_quips() > sun.peak_quips(),
        "PC {:.0} vs SUN {:.0}",
        pc.peak_quips(),
        sun.peak_quips()
    );
}

/// §5.1.1 (Figure 6b): for INT, PowerMANNA and the PC outperform the SUN.
#[test]
fn figure6_int_both_beat_sun() {
    let budget = 256 * 1024;
    let pm = run_hint(&systems::powermanna(), HintType::Int, budget);
    let pc = run_hint(&systems::pentium_180(), HintType::Int, budget);
    let sun = run_hint(&systems::sun_ultra(), HintType::Int, budget);
    assert!(pm.peak_quips() > sun.peak_quips());
    assert!(pc.peak_quips() > sun.peak_quips());
}

/// §3.1: "this through-routing takes only 0.2 microseconds", and §3:
/// "a logical connection between any two nodes involves at most only
/// three crossbars" in the 256-processor system.
#[test]
fn network_routing_claims() {
    let mut cluster = Network::new(Topology::two_nodes());
    let conn = cluster.open(0, 1, 0, Time::ZERO).expect("route");
    let us = conn.ready_at().as_us_f64();
    assert!((0.2..0.26).contains(&us), "1-hop setup {us:.3} us");

    let big = Topology::system256();
    for a in (0..128).step_by(17) {
        for b in (1..128).step_by(23) {
            if a == b {
                continue;
            }
            let r = big.route(a, b, 0).expect("route");
            assert!(
                r.crossbars() <= 3,
                "{a}->{b} uses {} crossbars",
                r.crossbars()
            );
        }
    }
}

/// §3.2/§1: each node has two links at 120 MB/s full duplex, so the
/// duplicated network offers 240 MB/s aggregate.
#[test]
fn duplicated_network_bandwidth_claim() {
    let mut net = Network::new(Topology::two_nodes());
    let bytes = 1u64 << 20;
    // Four simultaneous streams: both directions of both planes.
    let mut conns = vec![
        net.open(0, 1, 0, Time::ZERO).expect("p0 fwd"),
        net.open(1, 0, 0, Time::ZERO).expect("p0 rev"),
        net.open(0, 1, 1, Time::ZERO).expect("p1 fwd"),
        net.open(1, 0, 1, Time::ZERO).expect("p1 rev"),
    ];
    let mut end = Time::ZERO;
    for c in &mut conns {
        let t = c.transfer(c.ready_at(), bytes).finished;
        end = end.max(t);
    }
    let aggregate = 4.0 * bytes as f64 / end.as_secs_f64() / 1e6;
    assert!(
        (225.0..245.0).contains(&aggregate),
        "aggregate {aggregate:.0} MB/s should be ~240"
    );
}
