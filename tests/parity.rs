//! Parity suite for the zero-allocation hot paths.
//!
//! Two rewrites in this repo trade reconstruction for reuse:
//!
//! * `pm_mem::pool` hands sweep loops a *reused* [`MemorySystem`]
//!   (reconfigured in place by `reset_to`) instead of a fresh one per
//!   sweep point;
//! * `pm_net::stopwire::stream_batched` computes stop-wire flow control
//!   in closed-form segments instead of the per-flit tick loop.
//!
//! Both are pure optimisations: the observable behaviour must be
//! *byte-identical* to the naive paths. This suite runs both paths side
//! by side over fixed-seed workloads and asserts identical stats; a
//! single diverging counter anywhere fails the build.

use powermanna::machine::hintrun::run_hint;
use powermanna::machine::matmultrun::{measure_blocked, measure_dual, measure_single};
use powermanna::machine::systems;
use powermanna::mem::hierarchy::AccessResult;
use powermanna::mem::{pool, Access, HierarchyConfig, MemorySystem};
use powermanna::net::crossbar::CrossbarConfig;
use powermanna::net::flitsim::{self, Backpressure, FlitSim, FlitSimResult};
use powermanna::net::network::{Network, RouteBackpressure};
use powermanna::net::stopwire::{
    random_windows, stream_batched, stream_per_flit, stream_route, StopWireConfig, StopWireEngine,
};
use powermanna::net::topology::Topology;
use powermanna::sim::rng::SimRng;
use powermanna::sim::time::Time;
use powermanna::workloads::matmult::MatMultVersion;

/// One generator per test, derived from a test-specific tag so adding
/// cases to one test never shifts another test's inputs.
fn cases(tag: u64) -> SimRng {
    SimRng::seed_from(0x50617269_74790000 ^ tag)
}

// --- MemorySystem: fresh vs reused --------------------------------------

/// Everything a memory system can report, gathered in one comparable
/// value. If fresh and reused instances diverge in *any* counter or in
/// the access timeline itself, the suite points at the field.
#[derive(Debug, PartialEq)]
struct MemFingerprint {
    timeline: Vec<AccessResult>,
    l1: Vec<powermanna::mem::CacheStats>,
    l2: Vec<powermanna::mem::CacheStats>,
    tlb: Vec<powermanna::mem::TlbStats>,
    bus: powermanna::mem::bus::BusStats,
    dram_accesses: u64,
    dram_bank_conflicts: u64,
    interventions: u64,
    upgrades: u64,
}

/// Drives a fixed pseudo-random access stream (same `seed` ⇒ same
/// stream) through `mem` and fingerprints everything it did.
fn drive(mem: &mut MemorySystem, seed: u64, ops: usize) -> MemFingerprint {
    let cfg = mem.config();
    let mut rng = SimRng::seed_from(seed);
    let mut t = Time::ZERO;
    let mut timeline = Vec::with_capacity(ops);
    for _ in 0..ops {
        let cpu = rng.gen_range(0, cfg.cpus as u64) as usize;
        // A mix of hot lines (coherence traffic) and a cold sweep
        // (capacity/bank traffic).
        let addr = if rng.gen_bool(0.5) {
            rng.gen_range(0, 64) * 64
        } else {
            rng.gen_range(0, 1 << 22)
        };
        let access = if rng.gen_bool(0.3) {
            Access::write(addr)
        } else {
            Access::read(addr)
        };
        let r = mem.access(cpu, access, t);
        t = r.done_at;
        timeline.push(r);
    }
    MemFingerprint {
        timeline,
        l1: (0..cfg.cpus).map(|c| mem.l1_stats(c)).collect(),
        l2: (0..cfg.cpus).map(|c| mem.l2_stats(c)).collect(),
        tlb: (0..cfg.cpus).map(|c| mem.tlb_stats(c)).collect(),
        bus: mem.bus_stats(),
        dram_accesses: mem.dram_accesses(),
        dram_bank_conflicts: mem.dram_bank_conflicts(),
        interventions: mem.interventions(),
        upgrades: mem.upgrades(),
    }
}

/// The node configurations the sweeps actually use, in an order that
/// forces `reset_to` to grow, shrink, and reshape every component
/// (CPU count, cache geometry, line size, bus protocol, DRAM banks,
/// TLB shape all change between neighbours).
fn sweep_configs() -> Vec<HierarchyConfig> {
    vec![
        HierarchyConfig::mpc620_node(1),
        HierarchyConfig::sun_ultra_node(1),
        HierarchyConfig::mpc620_node(4),
        HierarchyConfig::pentium_node(2, 180.0, 60.0),
        HierarchyConfig::mpc620_node(2),
        HierarchyConfig::pentium_node(1, 266.0, 66.0),
    ]
}

/// A reused instance, `reset_to` a new config between sweep points,
/// behaves byte-identically to a freshly constructed one — including
/// when consecutive points use *different* machines, the worst case for
/// stale state.
#[test]
fn reused_memory_system_matches_fresh_across_configs() {
    let mut rng = cases(1);
    let mut reused = MemorySystem::new(HierarchyConfig::mpc620_node(1));
    for round in 0..2 {
        for (i, cfg) in sweep_configs().into_iter().enumerate() {
            let seed = rng.next_u64();
            let ops = rng.gen_range(100, 400) as usize;
            let fresh_print = drive(&mut MemorySystem::new(cfg), seed, ops);
            reused.reset_to(cfg);
            let reused_print = drive(&mut reused, seed, ops);
            assert_eq!(
                fresh_print, reused_print,
                "fresh and reused diverge at round {round} config {i}"
            );
        }
    }
}

/// `reset_to` with the *same* config is exactly `reset`: rerunning the
/// identical stream reproduces the identical fingerprint, so no warmth
/// leaks across sweep points.
#[test]
fn reset_to_same_config_is_cold() {
    let mut rng = cases(2);
    for cfg in sweep_configs() {
        let seed = rng.next_u64();
        let mut mem = MemorySystem::new(cfg);
        let first = drive(&mut mem, seed, 200);
        mem.reset_to(cfg);
        let second = drive(&mut mem, seed, 200);
        assert_eq!(first, second, "state leaked across reset_to");
    }
}

/// The pooled sweep entry points produce the same measurements whether
/// the thread-local pool is enabled (production) or bypassed (every
/// call constructs fresh). The pool is deliberately poisoned with a
/// different machine's configuration before the reused pass.
#[test]
fn pooled_measurements_match_fresh_construction() {
    let pm = systems::powermanna();
    let sun = systems::sun_ultra();

    pool::set_reuse(false);
    let fresh = (
        measure_single(&pm, 48, MatMultVersion::Transposed),
        measure_single(&pm, 128, MatMultVersion::Naive), // sampled path
        measure_dual(&pm, 48, MatMultVersion::Transposed),
        measure_blocked(&pm, 128, 32),
        run_hint(&pm, powermanna::workloads::hint::HintType::Double, 1 << 15),
    );

    pool::set_reuse(true);
    // Poison the pool: park a SUN-configured instance in the slot so the
    // PowerMANNA measurements below must reconfigure it in place.
    let _ = measure_single(&sun, 32, MatMultVersion::Naive);
    let reused = (
        measure_single(&pm, 48, MatMultVersion::Transposed),
        measure_single(&pm, 128, MatMultVersion::Naive),
        measure_dual(&pm, 48, MatMultVersion::Transposed),
        measure_blocked(&pm, 128, 32),
        run_hint(&pm, powermanna::workloads::hint::HintType::Double, 1 << 15),
    );

    assert_eq!(fresh, reused, "pooled sweep diverges from fresh sweep");
}

// --- Stop wire: per-flit vs batched -------------------------------------

/// Draws a random — but always valid and lossless — stop-wire
/// configuration.
fn random_stop_config(rng: &mut SimRng) -> StopWireConfig {
    let fifo_bytes = rng.gen_range(32, 513) as u32;
    let stop_lag = rng.gen_range(0, 9) as u32;
    // Leave exactly the headroom validate() demands, at minimum.
    let max_stop = fifo_bytes - stop_lag - 1;
    let stop_threshold = rng.gen_range(2, u64::from(max_stop) + 1) as u32;
    let resume_threshold = rng.gen_range(1, u64::from(stop_threshold)) as u32;
    StopWireConfig {
        fifo_bytes,
        stop_threshold,
        resume_threshold,
        stop_lag,
    }
}

/// The batched engine is byte-identical to the per-flit reference over
/// a large corpus of random configurations and backpressure schedules —
/// every stat, not just the finish tick.
#[test]
fn stopwire_engines_agree_on_random_corpus() {
    let mut rng = cases(3);
    for case in 0..400 {
        let config = random_stop_config(&mut rng);
        let start_tick = rng.gen_range(0, 2000);
        let bytes = rng.gen_range(1, 6000);
        let horizon = start_tick + bytes * 3 + 10;
        let count = rng.gen_range(0, 24) as u32;
        let windows = random_windows(&mut rng, horizon, count, 700);

        let a = stream_per_flit(config, start_tick, bytes, &windows);
        let b = stream_batched(config, start_tick, bytes, &windows);
        assert_eq!(
            a, b,
            "engines diverge on case {case}: {config:?} start={start_tick} \
             bytes={bytes} windows={windows:?}"
        );
        // Shared sanity: lossless and bounded regardless of schedule.
        assert_eq!(a.delivered, bytes, "case {case}: bytes dropped");
        assert!(
            a.max_occupancy <= config.fifo_bytes,
            "case {case}: FIFO overflow"
        );
    }
}

/// Pathological schedules the random corpus is unlikely to hit:
/// saturating stalls, stall walls longer than the stream, windows
/// butting against each other, single-byte streams.
#[test]
fn stopwire_engines_agree_on_adversarial_schedules() {
    type Schedule = (u64, u64, Vec<(u64, u64)>);
    let c = StopWireConfig::powermanna();
    let schedules: Vec<Schedule> = vec![
        (0, 1, vec![(0, 100_000)]),
        (0, 10_000, vec![(0, 50_000)]),
        (5, 300, vec![(0, 6), (6, 12), (12, 400)]),
        (0, 1000, (0..200).map(|i| (i * 3, i * 3 + 2)).collect()),
        (999, 256, vec![(1000, 1001)]),
        (0, 4096, vec![(100, 101), (5000, 20_000)]),
    ];
    for (start, bytes, stalls) in schedules {
        let a = stream_per_flit(c, start, bytes, &stalls);
        let b = stream_batched(c, start, bytes, &stalls);
        assert_eq!(a, b, "diverge for start={start} bytes={bytes}");
        assert_eq!(a.delivered, bytes);
    }
}

// --- FlitSim under backpressure: per-flit vs batched ---------------------

/// Compares everything two flit-sim runs can observably differ in.
fn assert_results_identical(a: &FlitSimResult, b: &FlitSimResult, what: &str) {
    assert_eq!(a.completions, b.completions, "{what}: completions");
    assert_eq!(a.finished_at, b.finished_at, "{what}: makespan");
    assert_eq!(a.payload_bytes, b.payload_bytes, "{what}: payload");
    assert_eq!(
        a.stop_transitions, b.stop_transitions,
        "{what}: stop transitions"
    );
    assert_eq!(
        a.stalled_link_ticks, b.stalled_link_ticks,
        "{what}: stalled ticks"
    );
    assert_eq!(a.head_blocking, b.head_blocking, "{what}: head blocking");
}

/// Full-crossbar parity: uniform, hot-spot and permutation traffic
/// through a backpressured crossbar give identical results under both
/// stop-wire engines, with one reused simulator per engine (so the
/// engine parity and the simulator's own reset are exercised together).
#[test]
fn flitsim_backpressure_engines_agree() {
    let mut rng = cases(4);
    let cfg = CrossbarConfig::powermanna();
    let mut sim_a = FlitSim::new();
    let mut sim_b = FlitSim::new();
    for round in 0..12 {
        let payload = rng.gen_range(16, 600) as u32;
        let per_input = rng.gen_range(1, 5) as u32;
        let traffic = match round % 3 {
            0 => flitsim::uniform_traffic(cfg, per_input, payload, rng.next_u64()),
            1 => flitsim::hotspot_traffic(cfg, per_input, payload),
            _ => flitsim::permutation_traffic(cfg, per_input, payload, 5),
        };
        // Random per-output stall schedules; some outputs unobstructed.
        let stop = StopWireConfig::powermanna();
        let horizon = u64::from(payload) * u64::from(per_input) * 20 + 1000;
        let windows: Vec<Vec<(u64, u64)>> = (0..cfg.ports)
            .map(|_| {
                if rng.gen_bool(0.25) {
                    Vec::new()
                } else {
                    let count = rng.gen_range(1, 12) as u32;
                    random_windows(&mut rng, horizon, count, 2000)
                }
            })
            .collect();

        let bp = |engine| Backpressure {
            stop,
            engine,
            windows: windows.clone(),
        };
        let a = sim_a.run_with_backpressure(cfg, &traffic, &bp(StopWireEngine::PerFlit));
        let b = sim_b.run_with_backpressure(cfg, &traffic, &bp(StopWireEngine::Batched));
        assert_results_identical(&a, &b, &format!("round {round}"));
        // Backpressure throttles; it never drops payload.
        assert_eq!(a.completions.len(), traffic.len());
        assert_eq!(
            a.payload_bytes,
            traffic.iter().map(|p| u64::from(p.payload)).sum::<u64>()
        );
    }
}

// --- Route-level backpressure: per-flit vs batched, model vs reference ---

/// Draws a random stop-wire configuration that is also *composable*:
/// `resume_threshold > stop_lag`, the condition `stream_route` demands
/// of multi-segment routes (see its docs — it guarantees inter-hop
/// FIFOs never underrun while bytes remain).
fn random_route_stop_config(rng: &mut SimRng) -> StopWireConfig {
    let fifo_bytes = rng.gen_range(32, 513) as u32;
    let stop_lag = rng.gen_range(0, 9) as u32;
    let max_stop = fifo_bytes - stop_lag - 1;
    let stop_threshold = rng.gen_range(u64::from(stop_lag) + 2, u64::from(max_stop) + 1) as u32;
    let resume_threshold = rng.gen_range(u64::from(stop_lag) + 1, u64::from(stop_threshold)) as u32;
    StopWireConfig {
        fifo_bytes,
        stop_threshold,
        resume_threshold,
        stop_lag,
    }
}

/// The chained route engine is byte-identical across both per-segment
/// engines over a corpus of random route shapes, mixed per-segment
/// geometries and random destination stall schedules.
#[test]
fn route_engines_agree_on_random_corpus() {
    let mut rng = cases(5);
    for case in 0..200 {
        let segments: Vec<StopWireConfig> = (0..rng.gen_range(1, 5))
            .map(|_| random_route_stop_config(&mut rng))
            .collect();
        let start_tick = rng.gen_range(0, 2000);
        let bytes = rng.gen_range(1, 6000);
        let horizon = start_tick + bytes * 3 + 10;
        let count = rng.gen_range(0, 24) as u32;
        let windows = random_windows(&mut rng, horizon, count, 700);

        let a = stream_route(
            StopWireEngine::PerFlit,
            &segments,
            start_tick,
            bytes,
            &windows,
        );
        let b = stream_route(
            StopWireEngine::Batched,
            &segments,
            start_tick,
            bytes,
            &windows,
        );
        assert_eq!(
            a, b,
            "route engines diverge on case {case}: {segments:?} \
             start={start_tick} bytes={bytes} windows={windows:?}"
        );
        assert_eq!(a.delivered, bytes, "case {case}: bytes dropped");
        for (i, s) in a.per_segment.iter().enumerate() {
            assert_eq!(s.delivered, bytes, "case {case}: segment {i} dropped");
            assert!(
                s.max_occupancy <= segments[i].fifo_bytes,
                "case {case}: segment {i} FIFO overflow"
            );
        }
    }
}

/// The acceptance pin: a backpressured `Network` transfer over a
/// single-crossbar route is byte-identical to the per-flit stop-wire
/// reference — the arrival is the reference's finish tick mapped back
/// to picoseconds plus the head latency charged once, and the
/// destination-side segment stats are the reference's stats verbatim.
#[test]
fn backpressured_network_single_crossbar_matches_per_flit_reference() {
    let mut rng = cases(6);
    let byte_time = powermanna::net::wire::WireConfig::synchronous().byte_time;
    for case in 0..40 {
        let mut net = Network::new(Topology::two_nodes());
        let mut conn = net.open(0, 1, 0, Time::ZERO).expect("two-node route");
        let start =
            conn.ready_at() + powermanna::sim::time::Duration::from_ps(rng.gen_range(0, 50_000));
        let bytes = rng.gen_range(1, 8000);
        let bt = byte_time.as_ps();
        let start_tick = start.as_ps().div_ceil(bt);
        let horizon = start_tick + bytes * 3 + 10;
        let count = rng.gen_range(0, 16) as u32;
        let windows = random_windows(&mut rng, horizon, count, 900);

        let reference = stream_per_flit(StopWireConfig::powermanna(), start_tick, bytes, &windows);

        for engine in [StopWireEngine::PerFlit, StopWireEngine::Batched] {
            let bp = RouteBackpressure {
                engine,
                ..RouteBackpressure::powermanna(windows.clone())
            };
            let stats = conn.transfer_backpressured(start, bytes, &bp);
            assert_eq!(
                stats.finished,
                Time::from_ps((reference.finish_tick + 1) * bt) + conn.head_latency(),
                "case {case} ({engine:?}): arrival diverges from the reference"
            );
            assert_eq!(
                *stats.per_segment.last().unwrap(),
                reference,
                "case {case} ({engine:?}): destination segment stats diverge"
            );
        }
    }
}

/// Multi-hop inter-cluster routes (3 crossbars, asynchronous middle
/// segments with skid-byte lags) give identical backpressured results
/// under both engines, and never lose payload on any segment.
#[test]
fn backpressured_network_multi_hop_engines_agree() {
    let mut rng = cases(7);
    let mut net = Network::new(Topology::system256());
    for case in 0..20 {
        // Distinct clusters, so the route crosses the middle stage.
        let src = rng.gen_range(0, 64) as usize;
        let dst = 64 + rng.gen_range(0, 64) as usize;
        let mut conn = net.open(src, dst, 0, Time::ZERO).expect("route");
        let bytes = rng.gen_range(1, 12_000);
        let bt = powermanna::net::wire::WireConfig::synchronous()
            .byte_time
            .as_ps();
        let t0 = conn.ready_at().as_ps().div_ceil(bt);
        let windows = random_windows(&mut rng, t0 + bytes * 3 + 10, 12, 2000);

        let run = |engine, conn: &mut powermanna::net::network::Connection| {
            let bp = RouteBackpressure {
                engine,
                ..RouteBackpressure::powermanna(windows.clone())
            };
            let start = conn.ready_at();
            conn.transfer_backpressured(start, bytes, &bp)
        };
        let a = run(StopWireEngine::PerFlit, &mut conn);
        let b = run(StopWireEngine::Batched, &mut conn);
        assert_eq!(a, b, "case {case}: engines diverge on {src}->{dst}");
        assert_eq!(a.per_segment.len(), conn.route().segments.len());
        for s in &a.per_segment {
            assert_eq!(s.delivered, bytes, "case {case}: segment lost bytes");
        }
        let done = a.finished;
        conn.close(&mut net, done);
    }
}

/// A simulator that just ran a backpressured batch produces the exact
/// same plain-run result afterwards as a brand-new one: backpressure
/// state cannot leak into subsequent runs.
#[test]
fn backpressure_state_does_not_leak_into_plain_runs() {
    let cfg = CrossbarConfig::powermanna();
    let traffic = flitsim::uniform_traffic(cfg, 3, 128, 77);
    let bp = Backpressure {
        stop: StopWireConfig::powermanna(),
        engine: StopWireEngine::Batched,
        windows: vec![vec![(0, 4000)]; cfg.ports as usize],
    };
    let mut used = FlitSim::new();
    let _ = used.run_with_backpressure(cfg, &traffic, &bp);
    let after = used.run(cfg, &traffic);
    let clean = FlitSim::new().run(cfg, &traffic);
    assert_results_identical(&after, &clean, "post-backpressure plain run");
    assert_eq!(after.stop_transitions, 0);
    assert_eq!(after.stalled_link_ticks, 0);
}

/// HINT's per-pass trace pooling (`Hint::recycle` feeding
/// `TraceBuilder::reusing`) is allocation reuse only: a benchmark that
/// recycles every pass buffer emits byte-identical traces, statistics
/// and functional results to one that never does.
#[test]
fn hint_trace_pooling_matches_fresh_buffers() {
    use powermanna::workloads::hint::{Hint, HintType};
    for dtype in [HintType::Double, HintType::Int] {
        let mut pooled = Hint::new(dtype);
        let mut fresh = Hint::new(dtype);
        for pass in 0..14 {
            let p = pooled.pass();
            let f = fresh.pass();
            assert_eq!(
                p.trace, f.trace,
                "{dtype:?} pass {pass}: pooled trace diverged"
            );
            assert_eq!(p.trace.stats(), f.trace.stats());
            assert_eq!(p.quality, f.quality);
            assert_eq!(p.memory_bytes, f.memory_bytes);
            assert_eq!(p.improvements, f.improvements);
            pooled.recycle(p.trace);
        }
        assert_eq!(pooled.quality(), fresh.quality());
    }
}

/// The full QUIPS pipeline (which recycles through `run_hint`) is
/// deterministic and unchanged by how many times it runs in a process —
/// pooled buffers cannot leak state across runs.
#[test]
fn hint_run_is_stable_across_repeated_runs() {
    use powermanna::workloads::hint::HintType;
    let sys = systems::powermanna();
    let first = run_hint(&sys, HintType::Double, 1 << 15);
    let second = run_hint(&sys, HintType::Double, 1 << 15);
    assert_eq!(first, second);
}

// --- Metrics: publication is observation-only ---------------------------

/// The observability layer's zero-cost contract: publishing to a
/// [`MetricRegistry`](powermanna::sim::metrics::MetricRegistry) copies
/// counters out *after* the fact, so a run that publishes mid-schedule
/// and a run that never constructs a registry produce byte-identical
/// [`TransferOutcome`](powermanna::net::outcome::TransferOutcome)s.
#[test]
fn metrics_publication_never_perturbs_outcomes() {
    use powermanna::net::wire::WireConfig;
    use powermanna::sim::metrics::MetricRegistry;

    let run = |publish: bool| {
        let mut rng = cases(9);
        let mut net = Network::new(Topology::cluster8());
        let mut reg = publish.then(MetricRegistry::new);
        let bt = WireConfig::synchronous().byte_time.as_ps();
        let mut outcomes = Vec::new();
        let mut t = Time::ZERO;
        for _ in 0..8 {
            let src = rng.gen_range(0, 4) as usize;
            let dst = 4 + rng.gen_range(0, 4) as usize;
            let plane = rng.gen_range(0, 2) as u32;
            let payload = 256 + rng.gen_range(0, 6000);
            let mut conn = net.open(src, dst, plane, t).expect("healthy cluster");
            let start = conn.ready_at();
            let t0 = start.as_ps().div_ceil(bt);
            let windows: Vec<(u64, u64)> = random_windows(&mut rng, 30_000, 6, 3_000)
                .into_iter()
                .map(|(s, e)| (t0 + s, t0 + e))
                .collect();
            let bp = RouteBackpressure::powermanna(windows);
            let o = conn.transfer_backpressured(start, payload, &bp);
            conn.close(&mut net, o.finished);
            t = o.finished;
            // Publishing *between* transfers is the adversarial case: a
            // registry write that touched model state would skew the
            // remaining schedule.
            if let Some(reg) = reg.as_mut() {
                o.publish(reg, "net");
                net.publish_metrics(reg, "net");
            }
            outcomes.push(o);
        }
        outcomes
    };
    assert_eq!(
        run(false),
        run(true),
        "publishing metrics changed simulated outcomes"
    );
}

/// A full observability collection pass leaves no global state behind:
/// the quick X5 artifact is byte-identical whether or not
/// [`collect_metrics`](powermanna::machine::observability::collect_metrics)
/// ran in the same process first.
#[test]
fn metrics_collection_leaves_experiments_untouched() {
    use powermanna::machine::experiments::find;
    use powermanna::machine::observability::collect_metrics;
    use powermanna::sim::metrics::MetricRegistry;

    let exp = find("blocking").expect("X5 exists");
    let baseline = (exp.run)(true, &mut MetricRegistry::new()).to_csv();
    let _ = collect_metrics(true);
    let after = (exp.run)(true, &mut MetricRegistry::new()).to_csv();
    assert_eq!(baseline, after, "collection pass perturbed an experiment");
}
