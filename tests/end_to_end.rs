//! End-to-end integration: nodes, network and messaging working together
//! through the public facade.

use powermanna::comm::config::CommConfig;
use powermanna::comm::driver;
use powermanna::comm::duplex::{DuplexChannel, Message, RecvError, Side};
use powermanna::isa::TraceBuilder;
use powermanna::machine::systems;
use powermanna::net::network::Network;
use powermanna::net::topology::Topology;
use powermanna::node::ni::NiConfig;
use powermanna::node::node::Node;
use powermanna::sim::time::Time;

#[test]
fn facade_reexports_compose() {
    // Build a node from the machine layer, run a trace from the ISA
    // layer, measure with sim-layer types.
    let mut node = Node::new(systems::powermanna().node);
    let mut tb = TraceBuilder::new();
    let a = tb.load(0, 8);
    let b = tb.load(64, 8);
    let c = tb.fadd(a, b);
    tb.store(c, 128, 8);
    let r = node.run_single(tb.finish());
    assert_eq!(r.instrs, 4);
    assert!(r.elapsed > powermanna::sim::time::Duration::ZERO);
}

#[test]
fn message_travels_cluster_with_crc() {
    // Open a connection across the eight-node cluster, stream a message
    // through the NI model, verify the payload.
    let mut net = Network::new(Topology::cluster8());
    let mut conn = net.open(2, 6, 0, Time::ZERO).expect("cluster route");
    let done = conn.transfer(conn.ready_at(), 4096).finished;
    conn.close(&mut net, done);
    assert!(done > conn.ready_at());

    let mut ch = DuplexChannel::new(NiConfig::powermanna());
    let data: Vec<u8> = (0..255).collect();
    let sent = ch.send(Side::A, Time::ZERO, Message::new(data.clone()));
    let (_, msg) = ch.recv(Side::B, sent).expect("delivery");
    assert_eq!(msg.payload(), data.as_slice());
}

#[test]
fn corrupted_wire_bit_is_caught_end_to_end() {
    let mut ch = DuplexChannel::new(NiConfig::powermanna());
    let mut msg = Message::new(vec![0x55; 100]);
    msg.corrupt_bit(50, 2);
    let sent = ch.send(Side::A, Time::ZERO, msg);
    assert_eq!(ch.recv(Side::B, sent).unwrap_err(), RecvError::CrcMismatch);
}

#[test]
fn both_planes_carry_traffic_simultaneously() {
    let mut net = Network::new(Topology::cluster8());
    let mut p0 = net.open(0, 4, 0, Time::ZERO).expect("plane 0");
    let mut p1 = net.open(0, 4, 1, Time::ZERO).expect("plane 1");
    let t0 = p0.transfer(p0.ready_at(), 60_000).finished;
    let t1 = p1.transfer(p1.ready_at(), 60_000).finished;
    // 60 KB at 60 MB/s per plane: each takes ~1 ms, in parallel.
    assert_eq!(t0, t1);
    p0.close(&mut net, t0);
    p1.close(&mut net, t1);
}

#[test]
fn comm_stack_composes_with_machine_configs() {
    let sys = systems::powermanna();
    let comm = sys.comm.expect("PowerMANNA has a comm stack");
    let lat = driver::one_way_latency(&comm, 8);
    assert!(lat.as_us_f64() < 4.0);

    // Deeper FIFOs and more hops are both expressible from the same
    // config without rebuilding anything else.
    let tuned = CommConfig::powermanna().with_fifo_factor(4).with_hops(3);
    let lat3 = driver::one_way_latency(&tuned, 8);
    assert!(lat3 > lat);
}

#[test]
fn four_cpu_node_runs_workloads() {
    // The §2 design-study node: four MPC620s on one board.
    let mut node = Node::new(systems::powermanna().node.with_cpus(4));
    let traces: Vec<_> = (0..4)
        .map(|i| {
            let mut tb = TraceBuilder::new();
            for k in 0..512u64 {
                tb.load((i as u64) << 26 | (k * 64), 8);
            }
            tb.finish()
        })
        .collect();
    let results = node.run_smp(traces);
    assert_eq!(results.len(), 4);
    assert!(results.iter().all(|r| r.loads == 512));
}

#[test]
fn run_is_reproducible_across_identical_machines() {
    let run = || {
        let mut node = Node::new(systems::powermanna().node);
        let mut tb = TraceBuilder::new();
        let mut acc = tb.reg();
        for k in 0..2000u64 {
            let v = tb.load(k * 56, 8);
            acc = tb.fmadd(v, v, acc);
        }
        tb.store(acc, 0xF000_0000, 8);
        node.run_single(tb.finish())
    };
    assert_eq!(run(), run());
}
