//! Golden regression pins.
//!
//! The simulator promises bit-for-bit determinism: every number in the
//! experiment bundle is a pure function of the source. These tests pin a
//! handful of exact values so an accidental model change (a latency
//! constant, a scheduling tweak, an eviction-order bug) cannot slip
//! through unnoticed. If a change here is *intended*, update the pin and
//! say why in the commit.

use powermanna::comm::config::CommConfig;
use powermanna::comm::driver;
use powermanna::cpu::{Cpu, CpuConfig};
use powermanna::isa::TraceBuilder;
use powermanna::mem::{Access, HierarchyConfig, MemorySystem};
use powermanna::net::network::Network;
use powermanna::net::topology::Topology;
use powermanna::node::crc::crc16;
use powermanna::sim::time::Time;

#[test]
fn golden_crc() {
    assert_eq!(crc16(b"123456789"), 0x29B1);
    assert_eq!(crc16(b"PowerMANNA"), crc16(b"PowerMANNA"));
    assert_eq!(crc16(&[0u8; 64]), 0xD6DA);
}

#[test]
fn golden_cold_miss_latency() {
    // One cold read on the PowerMANNA node: TLB walk + L1/L2 lookups +
    // bus address phase + DRAM access + data phase.
    let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(1));
    let r = mem.access(0, Access::read(0x1000), Time::ZERO);
    assert_eq!(r.latency.as_ps(), 292_226);
}

#[test]
fn golden_8byte_one_way_latency() {
    let lat = driver::one_way_latency(&CommConfig::powermanna(), 8);
    assert_eq!(lat.as_ps(), 2_981_342);
}

#[test]
fn golden_route_setup() {
    let mut net = Network::new(Topology::two_nodes());
    let conn = net.open(0, 1, 0, Time::ZERO).expect("route");
    assert_eq!(conn.ready_at().as_ps(), 216_667);
}

#[test]
fn golden_small_kernel_cycles() {
    let mut tb = TraceBuilder::new();
    let mut acc = tb.reg();
    for i in 0..64u64 {
        let a = tb.load(i * 8, 8);
        acc = tb.fmadd(a, a, acc);
    }
    tb.store(acc, 0x8000, 8);
    let trace = tb.finish();

    let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(1));
    let mut cpu = Cpu::new(CpuConfig::mpc620());
    let r = cpu.execute(trace, &mut mem, 0);
    assert_eq!(r.instrs, 129);
    assert_eq!(r.flops, 128);
    // The exact cycle count is part of the determinism contract.
    assert_eq!(r.cycles, 521);
}

#[test]
fn golden_values_stable_across_repeat_runs() {
    let run = || {
        let mut mem = MemorySystem::new(HierarchyConfig::mpc620_node(2));
        let mut out = Vec::new();
        let mut t = Time::ZERO;
        for i in 0..32u64 {
            let r = mem.access((i % 2) as usize, Access::write(i * 96), t);
            t = r.done_at;
            out.push(r.latency.as_ps());
        }
        out
    };
    assert_eq!(run(), run());
}
