//! Wall-clock guard for the observability layer's zero-cost contract.
//!
//! The metrics redesign made every transfer return a [`TransferOutcome`]
//! instead of a bare `Time`. The risk is hidden hot-path cost: an
//! allocation smuggled into `streamed()`, or counter bookkeeping that
//! scales with bytes instead of transfers. This test times the hot
//! paths with the in-repo `tinybench` harness and fails on
//! order-of-magnitude regressions — bounds are deliberately loose
//! (10-50x headroom on a quiet host) so CI noise cannot trip them,
//! while a stray per-byte loop or per-transfer heap allocation still
//! will.
//!
//! Budget per bench comes from `PM_BENCH_BUDGET_MS` (default 200 ms);
//! the parity suite covers *correctness* of the disabled path, this
//! suite covers its *speed*.
//!
//! [`TransferOutcome`]: powermanna::net::outcome::TransferOutcome

use pm_bench::tinybench::Runner;
use powermanna::net::network::Network;
use powermanna::net::topology::Topology;
use powermanna::sim::metrics::MetricRegistry;
use powermanna::sim::time::Time;
use std::hint::black_box;
use std::time::Duration;

#[test]
fn transfer_outcome_hot_path_stays_cheap() {
    let mut net = Network::new(Topology::two_nodes());
    let mut conn = net.open(0, 1, 0, Time::ZERO).expect("route");
    let start = conn.ready_at();

    let mut r = Runner::new();
    Runner::header("observability overhead guard");

    // The metrics-disabled hot path: a plain transfer is closed-form
    // arithmetic plus a Vec::new() (which does not allocate). Budget:
    // 2 us/iter, ~40x the measured cost on a 2020s x86 core.
    r.bench("plain_transfer", || {
        black_box(conn.transfer(black_box(start), black_box(4096)))
    });

    // The metrics-enabled path: same transfer plus one registry
    // publication. Publication formats ~11 paths and walks a BTreeMap,
    // so it is orders of magnitude above the transfer itself — the
    // bound only has to keep it out of per-byte territory.
    let mut reg = MetricRegistry::new();
    r.bench("transfer_plus_publish", || {
        let o = conn.transfer(black_box(start), black_box(4096));
        o.publish(&mut reg, "net");
        black_box(o)
    });

    let samples = r.samples();
    let plain = samples[0].mean;
    let published = samples[1].mean;
    assert!(
        plain < Duration::from_micros(2),
        "plain transfer costs {plain:?}/iter — the disabled path grew a hot-path allocation?"
    );
    assert!(
        published < Duration::from_micros(100),
        "transfer+publish costs {published:?}/iter — publication stopped being per-transfer?"
    );
}

/// The X12 hot path's contract: with preallocated [`OutcomeHandles`]
/// a publication is a handful of dense-index counter bumps — no path
/// formatting, no `BTreeMap` walk — so driving millions of messages
/// with metrics enabled stays feasible. Bounds are ~20-50x measured
/// cost so host noise cannot trip them, while reintroducing per-publish
/// path lookups (about 1.5 us each) still will.
///
/// [`OutcomeHandles`]: powermanna::net::outcome::OutcomeHandles
#[test]
fn traffic_metrics_hot_path_stays_cheap() {
    use powermanna::machine::traffic::{quick_scenario, run_scenario, ScenarioTopology};
    use powermanna::net::outcome::OutcomeHandles;

    let mut net = Network::new(Topology::two_nodes());
    let mut conn = net.open(0, 1, 0, Time::ZERO).expect("route");
    let start = conn.ready_at();

    let mut r = Runner::new();
    Runner::header("traffic metrics hot-path guard");

    let mut reg = MetricRegistry::new();
    let handles = OutcomeHandles::new(&mut reg, "net");
    r.bench("publish_via_handles", || {
        let o = conn.transfer(black_box(start), black_box(4096));
        o.publish_to(&mut reg, &handles);
        black_box(o)
    });

    // The whole scenario loop, metrics on — per-message cost includes
    // generation, route setup, the backpressured transfer and the
    // registry updates.
    r.bench("scenario_per_message_with_metrics", || {
        let cfg = quick_scenario(ScenarioTopology::Cluster8Xbar, 0.5, 500, 0xEB);
        let mut sreg = MetricRegistry::new();
        black_box(run_scenario(&cfg, Some(&mut sreg)).delivered_bytes)
    });

    let samples = r.samples();
    let publish = samples[0].mean;
    let scenario = samples[1].mean / 500;
    assert!(
        publish < Duration::from_micros(2),
        "publish via handles costs {publish:?}/iter — did the hot path regrow path lookups?"
    );
    assert!(
        scenario < Duration::from_micros(40),
        "scenario costs {scenario:?}/message with metrics on — X12 full runs would crawl"
    );
}

/// The X13 hot path's contract: a reused [`RouteSim`] replays a full
/// 1024-worm permutation batch touching only its pooled arenas — no
/// per-route `Vec`, no per-run adjacency rebuild. The budget is ~20x
/// the measured cost of the event loop itself, so a smuggled per-worm
/// allocation (or accidentally re-compiling the 272-crossbar topology
/// per run) still trips it.
///
/// [`RouteSim`]: powermanna::net::routesim::RouteSim
#[test]
fn routesim_hot_path_keeps_1024_worms_feasible() {
    use powermanna::machine::hierarchy::x13_hot_path_worms;
    use powermanna::net::routesim::{RoutePolicy, RouteSim};

    let worms = x13_hot_path_worms();
    let mut sim = RouteSim::new(&Topology::system1024());
    // Warm-up also pins the semantic contract the timing rides on:
    // the greedy adaptive matching keeps every worm in flight at once.
    let warm = sim.run(&worms, RoutePolicy::Adaptive);
    assert_eq!(
        warm.peak_inflight, 1024,
        "the permutation must stay perfect"
    );

    let mut r = Runner::new();
    Runner::header("routesim 1024-worm hot-path guard");
    r.bench("permutation_1024_reused", || {
        black_box(
            sim.run(black_box(&worms), RoutePolicy::Adaptive)
                .finished_at,
        )
    });

    let per_run = r.samples()[0].mean;
    assert!(
        per_run < Duration::from_millis(20),
        "a pooled 1024-worm batch costs {per_run:?}/run — did the route arena regrow \
         per-worm allocations?"
    );
}

/// The health-table lookup sits on the resilient route-selection path:
/// every candidate enumeration for every attempt of every worm asks
/// `is_quarantined`. The empty table (the overwhelmingly common case —
/// healthy fabric) must stay in fast-path territory, and a table
/// holding a realistic worst-case suspect set (16 entries, the fallout
/// of a rolling-death campaign as seen by one source) must stay linear
/// and tiny, nowhere near timer-wheel or hash-map territory.
#[test]
fn health_table_lookup_stays_cheap() {
    use powermanna::net::health::{HealthConfig, HealthTable};

    let cfg = HealthConfig::default();
    let now = Time::ZERO;
    let empty = HealthTable::new();
    let mut full = HealthTable::new();
    for i in 0..16u32 {
        full.record_failure((i as usize, i), now, &cfg);
    }
    assert_eq!(full.len(), 16);

    let mut r = Runner::new();
    Runner::header("health-table lookup guard");

    // Empty table: one len check, no iteration. Budget 100 ns/iter is
    // ~50x a branch-plus-return on a 2020s core.
    r.bench("lookup_empty", || {
        black_box(empty.is_quarantined(black_box((3, 7)), black_box(now)))
    });

    // 16 suspects, probe misses: a full linear scan of the vector.
    // Budget 1 us/iter keeps ~50x headroom while still catching an
    // accidental allocation or a per-entry clock conversion.
    r.bench("lookup_16_suspects", || {
        black_box(full.is_quarantined(black_box((99, 0)), black_box(now)))
    });

    let samples = r.samples();
    let empty_ns = samples[0].mean;
    let full_ns = samples[1].mean;
    assert!(
        empty_ns < Duration::from_nanos(100),
        "empty-table lookup costs {empty_ns:?}/iter — the fast path lost its early-out?"
    );
    assert!(
        full_ns < Duration::from_micros(1),
        "16-suspect lookup costs {full_ns:?}/iter — the scan stopped being a flat vector walk?"
    );
}
