//! Registry/outcome reconciliation: the hierarchical metrics layer is
//! only trustworthy if its counters are *exactly* a recount of what the
//! per-transfer [`TransferOutcome`]s already said. These tests drive
//! seeded random schedules through the network, mesh and reliable
//! transport, publish every outcome, and pin the registry totals to
//! independent sums — including the X8 goodput, which must come out
//! bit-identical to the [`FaultStats`] ledger's own computation.
//!
//! [`TransferOutcome`]: powermanna::net::outcome::TransferOutcome
//! [`FaultStats`]: powermanna::net::fault::FaultStats

use powermanna::comm::reliable::ResilientNetwork;
use powermanna::net::fault::{FaultPlan, LinkRef};
use powermanna::net::mesh::{Mesh, MeshConfig};
use powermanna::net::network::{Network, RouteBackpressure};
use powermanna::net::stopwire::random_windows;
use powermanna::net::topology::Topology;
use powermanna::net::wire::WireConfig;
use powermanna::sim::metrics::MetricRegistry;
use powermanna::sim::rng::SimRng;
use powermanna::sim::time::Time;

fn cases(tag: u64) -> SimRng {
    SimRng::seed_from(0x0B5E_7261_B111_7400 ^ tag)
}

/// Per-transfer stall accounting reconciles with the registry: across
/// seeded backpressured schedules on the crossbar network, the sum of
/// each outcome's `stalled_bytes()` equals the `net/stalled_bytes`
/// counter, and likewise for bytes, stop transitions and transfer
/// counts.
#[test]
fn network_stall_bytes_reconcile_with_outcomes() {
    let mut rng = cases(1);
    for _ in 0..6 {
        let mut net = Network::new(Topology::cluster8());
        let mut reg = MetricRegistry::new();
        let bt = WireConfig::synchronous().byte_time.as_ps();
        let (mut transfers, mut bytes, mut stalled, mut transitions) = (0u64, 0u64, 0u64, 0u64);
        let mut t = Time::ZERO;
        for _ in 0..rng.gen_range(2, 6) {
            let src = rng.gen_range(0, 4) as usize;
            let dst = 4 + rng.gen_range(0, 4) as usize;
            let plane = rng.gen_range(0, 2) as u32;
            let payload = 512 + rng.gen_range(0, 8192);
            let mut conn = net.open(src, dst, plane, t).expect("healthy cluster");
            let start = conn.ready_at();
            let t0 = start.as_ps().div_ceil(bt);
            let count = rng.gen_range(1, 12) as u32;
            let windows: Vec<(u64, u64)> = random_windows(&mut rng, 40_000, count, 4_000)
                .into_iter()
                .map(|(s, e)| (t0 + s, t0 + e))
                .collect();
            let bp = RouteBackpressure::powermanna(windows);
            let o = conn.transfer_backpressured(start, payload, &bp);
            conn.close(&mut net, o.finished);
            t = o.finished;
            transfers += 1;
            bytes += o.bytes;
            stalled += o.stalled_bytes();
            transitions += o.stop_transitions;
            o.publish(&mut reg, "net");
        }
        assert_eq!(reg.counter_value("net/transfers"), Some(transfers));
        assert_eq!(reg.counter_value("net/bytes"), Some(bytes));
        assert_eq!(reg.counter_value("net/stalled_bytes"), Some(stalled));
        assert_eq!(reg.counter_value("net/stop_transitions"), Some(transitions));
    }
}

/// The same reconciliation holds on the §6 mesh, rerouting included:
/// `mesh/reroutes` equals the number of outcomes that reported a
/// detour, equals [`Mesh::reroutes`]'s own ledger — bit-exact — and the
/// byte/stall sums match.
///
/// [`Mesh::reroutes`]: powermanna::net::mesh::Mesh::reroutes
#[test]
fn mesh_outcomes_reconcile_with_registry() {
    let mut rng = cases(2);
    for _ in 0..6 {
        let mut mesh = Mesh::new(MeshConfig::powermanna_parts(4, 4));
        // Kill one interior link so some routes detour.
        mesh.fail_link(1, 2);
        let mut reg = MetricRegistry::new();
        let (mut bytes, mut stalled, mut reroutes) = (0u64, 0u64, 0u64);
        let mut t = Time::ZERO;
        for _ in 0..rng.gen_range(3, 8) {
            let src = rng.gen_range(0, 8) as u32;
            let dst = rng.gen_range(8, 16) as u32;
            let Ok(mut conn) = mesh.open(src, dst, t) else {
                continue;
            };
            let payload = 256 + rng.gen_range(0, 4096);
            let o = conn.transfer(conn.ready_at(), payload);
            conn.close(&mut mesh, o.finished);
            t = o.finished;
            bytes += o.bytes;
            stalled += o.stalled_bytes();
            reroutes += u64::from(o.rerouted);
            o.publish(&mut reg, "mesh");
        }
        assert_eq!(reg.counter_value("mesh/bytes"), Some(bytes));
        assert_eq!(reg.counter_value("mesh/stalled_bytes"), Some(stalled));
        assert_eq!(reg.counter_value("mesh/reroutes"), Some(reroutes));
        // The mesh's own ledger is the same number — a detour is counted
        // exactly when a rerouted connection was handed out.
        assert_eq!(mesh.reroutes(), reroutes);
    }
}

/// A detour that dies mid-open must not count as a reroute: the caller
/// got no connection, so no outcome will ever report the detour, and an
/// eager count would drift `Mesh::reroutes` away from the outcome
/// recount. Forces the overlap deterministically: the only healthy path
/// crosses a link held by an un-closed connection.
///
/// [`Mesh::reroutes`]: powermanna::net::mesh::Mesh::reroutes
#[test]
fn failed_mid_open_detour_does_not_count_as_a_reroute() {
    let mut mesh = Mesh::new(MeshConfig::powermanna_parts(4, 4));
    // 1→2's direct link is dead, so that pair must detour via BFS
    // (E, W, S, N order): 1→5→6→2.
    mesh.fail_link(1, 2);
    // Hold 5→6 with an open connection whose close is not yet recorded.
    let mut holder = mesh.open(5, 6, Time::ZERO).expect("direct XY path");
    // The detour claims 1→5, then dies on the held 5→6 link.
    let err = mesh.open(1, 2, Time::ZERO).expect_err("detour blocked");
    assert!(
        matches!(err, powermanna::net::mesh::MeshError::LinkHeld { .. }),
        "expected LinkHeld, got {err:?}"
    );
    assert_eq!(
        mesh.reroutes(),
        0,
        "a failed open handed out no rerouted connection"
    );
    // Once the holder closes, the same detour succeeds — and only now
    // does the ledger (and the outcome) count it, keeping the two
    // bit-equal.
    let oh = holder.transfer(holder.ready_at(), 64);
    holder.close(&mut mesh, oh.finished);
    let mut conn = mesh.open(1, 2, oh.finished).expect("detour now opens");
    let o = conn.transfer(conn.ready_at(), 256);
    conn.close(&mut mesh, o.finished);
    assert!(o.rerouted, "the successful open detoured");
    assert_eq!(mesh.reroutes(), 1);
    let mut reg = MetricRegistry::new();
    o.publish(&mut reg, "mesh");
    oh.publish(&mut reg, "mesh");
    assert_eq!(
        reg.counter_value("mesh/reroutes"),
        Some(mesh.reroutes()),
        "outcome recount and mesh ledger must be bit-equal"
    );
}

/// The X8 scenario's registry-derived goodput is *bit-identical* to the
/// [`FaultStats::goodput_mbs`] ledger: both divide the same
/// `delivered_bytes` by the same elapsed time, so the two `f64`s must
/// compare equal — not merely close.
///
/// [`FaultStats::goodput_mbs`]: powermanna::net::fault::FaultStats::goodput_mbs
#[test]
fn x8_registry_goodput_matches_fault_ledger_exactly() {
    let mut rng = cases(3);
    for round in 0..4 {
        let rate = [0.0, 0.1, 0.25, 0.4][round];
        let plan = FaultPlan::clean(rng.next_u64())
            .with_transient_rate(rate)
            .expect("rate in range")
            .kill_link(
                Time::from_ps(150_000_000),
                LinkRef::NodeLink { node: 0, plane: 0 },
            );
        let mut rn = ResilientNetwork::new(Network::new(Topology::two_nodes()), plan);
        let mut reg = MetricRegistry::new();
        let mut buf = vec![0u8; 4096];
        let mut cursors = [Time::ZERO; 2];
        let mut outcome_bytes = 0u64;
        for i in 0..16 {
            buf[0] = i as u8;
            let plane = (i % 2) as u32;
            let d = rn
                .send(0, 1, plane, cursors[plane as usize], &buf)
                .expect("a healthy plane remains");
            cursors[plane as usize] = d.finished;
            outcome_bytes += d.bytes;
            d.publish(&mut reg, "comm");
        }
        rn.publish_metrics(&mut reg, "comm");
        let elapsed = cursors[0].max(cursors[1]).since(Time::ZERO);

        // Outcome-level and ledger-level byte counts agree...
        let delivered = reg
            .counter_value("comm/faults/delivered_bytes")
            .expect("ledger published");
        assert_eq!(delivered, rn.stats().delivered_bytes);
        assert_eq!(reg.counter_value("comm/bytes"), Some(outcome_bytes));
        assert_eq!(outcome_bytes, delivered);

        // ...so the registry goodput is the ledger goodput, exactly.
        let registry_goodput = delivered as f64 / elapsed.as_secs_f64() / 1e6;
        let ledger_goodput = rn.stats().goodput_mbs(elapsed);
        assert_eq!(
            registry_goodput.to_bits(),
            ledger_goodput.to_bits(),
            "rate {rate}: registry {registry_goodput} vs ledger {ledger_goodput}"
        );

        // Retry accounting reconciles too: attempts summed over outcomes
        // equal the ledger's wire transmissions.
        assert_eq!(
            reg.counter_value("comm/attempts"),
            reg.counter_value("comm/faults/transmissions"),
        );
    }
}

/// The X12 scenario engine's conservation ledger reconciles bit-exact
/// with the registry: `offered == delivered + dropped + in-flight`
/// globally AND per tenant, with every term recounted from the
/// `traffic/*` counters rather than trusted from the report. Runs with
/// faults under load so the retry/corruption counters are exercised
/// too.
#[test]
fn traffic_conservation_reconciles_with_registry_per_tenant() {
    use powermanna::machine::traffic::{quick_scenario, run_scenario, ScenarioTopology};

    let mut cfg = quick_scenario(ScenarioTopology::Cluster8Xbar, 0.8, 12_000, 0xC0);
    cfg.tenants = 128;
    cfg.faults = Some(
        FaultPlan::clean(0xC0DE)
            .with_transient_rate(0.05)
            .expect("rate in range")
            .kill_link(
                Time::from_ps(1_000_000_000),
                LinkRef::NodeLink { node: 2, plane: 0 },
            ),
    );
    let mut reg = MetricRegistry::new();
    let report = run_scenario(&cfg, Some(&mut reg));

    // The report's own invariant first.
    assert!(report.conserves_bytes());
    // Overload with faults must exercise all three fates and the
    // retry machinery, or this test proves less than it claims.
    assert!(report.delivered_messages > 0);
    assert!(report.dropped_messages > 0);
    assert!(report.late_messages > 0);
    assert!(report.attempts > report.offered_messages - report.dropped_messages);
    assert!(report.crc_failures > 0);
    assert!(report.failovers > 0);

    // Global counters are a bit-exact recount of the report.
    let c = |path: &str| reg.counter_value(path).expect(path);
    assert_eq!(c("traffic/offered_bytes"), report.offered_bytes);
    assert_eq!(c("traffic/offered_messages"), report.offered_messages);
    assert_eq!(c("traffic/delivered_bytes"), report.delivered_bytes);
    assert_eq!(c("traffic/delivered_messages"), report.delivered_messages);
    assert_eq!(c("traffic/dropped_bytes"), report.dropped_bytes);
    assert_eq!(c("traffic/dropped_messages"), report.dropped_messages);
    assert_eq!(c("traffic/inflight_bytes"), report.inflight_bytes);
    assert_eq!(c("traffic/inflight_messages"), report.inflight_messages);
    assert_eq!(c("traffic/late_messages"), report.late_messages);
    assert_eq!(c("traffic/net/attempts"), report.attempts);
    assert_eq!(c("traffic/net/crc_failures"), report.crc_failures);
    assert_eq!(c("traffic/net/failovers"), report.failovers);
    assert_eq!(c("traffic/net/reroutes"), report.reroutes);
    // Conservation holds over the registry's own numbers.
    assert_eq!(
        c("traffic/offered_bytes"),
        c("traffic/delivered_bytes") + c("traffic/dropped_bytes") + c("traffic/inflight_bytes")
    );

    // Per-tenant rows: registry vs report, and each row conserves.
    let (mut offered, mut delivered, mut dropped, mut inflight) = (0u64, 0u64, 0u64, 0u64);
    for (t, row) in report.per_tenant.iter().enumerate() {
        let o = c(&format!("traffic/tenant{t:04}/offered_bytes"));
        let d = c(&format!("traffic/tenant{t:04}/delivered_bytes"));
        let x = c(&format!("traffic/tenant{t:04}/dropped_bytes"));
        let f = c(&format!("traffic/tenant{t:04}/inflight_bytes"));
        assert_eq!(o, row.offered_bytes, "tenant {t} offered");
        assert_eq!(d, row.delivered_bytes, "tenant {t} delivered");
        assert_eq!(x, row.dropped_bytes, "tenant {t} dropped");
        assert_eq!(f, row.inflight_bytes, "tenant {t} inflight");
        assert_eq!(o, d + x + f, "tenant {t} conservation");
        offered += o;
        delivered += d;
        dropped += x;
        inflight += f;
    }
    // Tenant columns sum to the global counters — nothing counted
    // twice, nothing uncounted.
    assert_eq!(offered, c("traffic/offered_bytes"));
    assert_eq!(delivered, c("traffic/delivered_bytes"));
    assert_eq!(dropped, c("traffic/dropped_bytes"));
    assert_eq!(inflight, c("traffic/inflight_bytes"));

    // The latency histogram holds exactly the delivered messages.
    let lat = reg
        .histogram_stats("traffic/latency_ns")
        .expect("histogram");
    assert_eq!(lat.total(), report.delivered_messages);
    assert_eq!(lat.total(), report.latency_ns.total());
    assert_eq!(lat.sum(), report.latency_ns.sum());
    assert_eq!(lat.quantile(0.99), report.p99_latency_ns());
    assert_eq!(lat.quantile(0.999), report.p999_latency_ns());
}

/// A resilient run's published ledger is a bit-exact recount of its
/// per-worm outcomes. Two scenarios:
///
/// * transients only — nothing is dropped, so every attempt and CRC
///   rejection lives in a [`WormOutcome::Delivered`] and the registry
///   totals must equal independent sums over the outcomes;
/// * deaths plus repairs — conservation (`offered == delivered +
///   dropped`, and in bytes) holds over the registry's own numbers,
///   and the detection/recovery trees are populated.
///
/// [`WormOutcome::Delivered`]: powermanna::net::routesim::WormOutcome
#[test]
fn resilient_ledger_reconciles_with_outcomes() {
    use powermanna::net::routesim::{permutation_worms, ResilienceConfig, RouteSim};
    use powermanna::sim::time::Duration;

    let t = Topology::system256();
    let mut sim = RouteSim::new(&t);
    let worms = permutation_worms(16, 8, 2048, 0, Time::ZERO);
    let cfg = ResilienceConfig::default();

    // Scenario 1: transients only. No worm is ever dropped, so the
    // outcome list carries every attempt and every CRC rejection.
    let plan = FaultPlan::clean(0x0B5E).with_transient_rate(0.05).unwrap();
    let r = sim.run_resilient(&worms, &plan, &cfg).expect("plan valid");
    let mut reg = MetricRegistry::new();
    r.stats.publish(&mut reg, "res");
    let c = |path: &str| reg.counter_value(path).unwrap_or(0);

    assert_eq!(c("res/dropped"), 0, "transients alone must not drop");
    let delivered: Vec<_> = r.outcomes.iter().filter_map(|o| o.delivered()).collect();
    assert_eq!(c("res/offered"), worms.len() as u64);
    assert_eq!(c("res/delivered"), delivered.len() as u64);
    let bytes: u64 = delivered.iter().map(|d| d.bytes).sum();
    assert_eq!(c("res/delivered_bytes"), bytes);
    assert_eq!(
        c("res/offered_bytes"),
        worms.iter().map(|w| u64::from(w.payload)).sum::<u64>()
    );
    let attempts: u64 = delivered.iter().map(|d| u64::from(d.attempts)).sum();
    assert_eq!(c("res/transmissions"), attempts);
    let crc: u64 = delivered.iter().map(|d| u64::from(d.crc_failures)).sum();
    assert_eq!(c("res/corrupted"), crc);
    assert!(crc > 0, "a 5% transient rate must corrupt something");

    // Scenario 2: link deaths with scheduled repairs. Dropped worms
    // carry only their attempt count, so reconcile conservation over
    // the ledger itself and check the health/watchdog trees exist.
    let plan = FaultPlan::clean(0x0B5F)
        .random_link_downs(&t, 6, Duration::from_us(300))
        .repair_all_after(Duration::from_us(500));
    let r = sim.run_resilient(&worms, &plan, &cfg).expect("plan valid");
    let mut reg = MetricRegistry::new();
    r.stats.publish(&mut reg, "res");
    let c = |path: &str| reg.counter_value(path).unwrap_or(0);

    assert_eq!(c("res/offered"), c("res/delivered") + c("res/dropped"));
    assert_eq!(
        c("res/offered_bytes"),
        c("res/delivered_bytes") + c("res/dropped_bytes")
    );
    let delivered_bytes: u64 = r
        .outcomes
        .iter()
        .filter_map(|o| o.delivered())
        .map(|d| d.bytes)
        .sum();
    assert_eq!(c("res/delivered_bytes"), delivered_bytes);
    assert_eq!(c("res/link_downs"), 6);
    assert_eq!(c("res/repairs"), 6);
    assert!(
        c("res/health/failed_opens") + c("res/severed") > 0,
        "six deaths under load must hit something"
    );
    assert!(c("res/watchdog/scans") > 0);
}
