#!/usr/bin/env sh
# Local CI gate. Mirrors what the tier-1 verify runs, plus lints.
# Must pass offline with an empty cargo registry (no external deps).
set -eu

cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --workspace --release

echo "== test =="
cargo test --workspace -q

echo "== parity (release) =="
# The fresh-vs-reused / per-flit-vs-batched equivalence proofs rerun
# under optimisation: release codegen is what the benchmarks and the
# figure bundle actually execute, and debug_asserts compiled out must
# not be what held the two paths together.
cargo test --release -q --test parity

echo "== figure shape checks (quick) =="
cargo run --release -p pm-bench --bin figures -- --quick --checks

echo "== connection-model goldens (quick X5/X6) =="
# The network/mesh connection models feed the X5/X6 artifacts; any
# timing change in open/transfer/close or the stop-wire composition
# shows up here as a CSV diff against the committed goldens. To accept
# an intentional change, regenerate with:
#   cargo run --release -p pm-bench --bin figures -- --quick --csv \
#     blocking mesh_vs_xbar > tests/goldens/x5_x6_quick.csv
cargo run --release -p pm-bench --bin figures -- --quick --csv \
  blocking mesh_vs_xbar > target/x5_x6_quick.csv
diff -u tests/goldens/x5_x6_quick.csv target/x5_x6_quick.csv

echo "== fault-injection golden (quick X8) =="
# The X8 degradation curve pins the whole fault layer: the seeded
# FaultPlan schedule, the transient-injector decision stream, the
# retransmission/backoff timing and the plane-failover path. Regenerate
# an intentional change with:
#   cargo run --release -p pm-bench --bin figures -- --quick --csv \
#     faults > tests/goldens/x8_quick.csv
cargo run --release -p pm-bench --bin figures -- --quick --csv \
  faults > target/x8_quick.csv
diff -u tests/goldens/x8_quick.csv target/x8_quick.csv

echo "== traffic-collapse golden (quick X12) =="
# The X12 collapse curves pin the whole heavy-traffic stack: the seeded
# multi-tenant generator streams, the scenario driver's queue/deadline
# accounting, and the contention the Network/Mesh fabrics resolve under
# saturation — serial and par_sweep runs must both match. Regenerate an
# intentional change with:
#   cargo run --release -p pm-bench --bin figures -- --quick --csv \
#     traffic > tests/goldens/x12_quick.csv
cargo run --release -p pm-bench --bin figures -- --quick --csv \
  traffic > target/x12_quick.csv
diff -u tests/goldens/x12_quick.csv target/x12_quick.csv

echo "== hierarchy golden (quick X13) =="
# The X13 curves pin the 1024-node hierarchical topology, the
# multi-crossbar RouteSim wormhole model (blocking, waiter wake-up,
# adaptive vs oblivious path choice) and the 8x8 mesh reference — any
# timing or policy drift shows up as a CSV diff. Regenerate an
# intentional change with:
#   cargo run --release -p pm-bench --bin figures -- --quick --csv \
#     hierarchy > tests/goldens/x13_quick.csv
cargo run --release -p pm-bench --bin figures -- --quick --csv \
  hierarchy > target/x13_quick.csv
diff -u tests/goldens/x13_quick.csv target/x13_quick.csv

echo "== resilience golden (quick X14) =="
# The X14 campaign curves pin the whole self-healing layer: the seeded
# fault campaigns (transient stream, link-death roll, repair schedule),
# the health-table learning and quarantine windows, the jittered
# retransmission backoff and the watchdog's recovery decisions, under
# both oracle and detected failover. Regenerate an intentional change
# with:
#   cargo run --release -p pm-bench --bin figures -- --quick --csv \
#     resilience > tests/goldens/x14_quick.csv
cargo run --release -p pm-bench --bin figures -- --quick --csv \
  resilience > target/x14_quick.csv
diff -u tests/goldens/x14_quick.csv target/x14_quick.csv

echo "== observability golden (quick metrics registry) =="
# The --metrics collection drives one deterministic scenario through
# every substrate and dumps the registry as sorted CSV; any counter
# drift anywhere in the machine shows up as a diff. Regenerate an
# intentional change with:
#   cargo run --release -p pm-bench --bin figures -- --metrics --quick \
#     > /dev/null && cp out/metrics.csv tests/goldens/metrics_quick.csv
cargo run --release -p pm-bench --bin figures -- --metrics --quick > /dev/null
diff -u tests/goldens/metrics_quick.csv out/metrics.csv

echo "CI OK"
