#!/usr/bin/env sh
# Local CI gate. Mirrors what the tier-1 verify runs, plus lints.
# Must pass offline with an empty cargo registry (no external deps).
set -eu

cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --workspace --release

echo "== test =="
cargo test --workspace -q

echo "== figure shape checks (quick) =="
cargo run --release -p pm-bench --bin figures -- --quick --checks

echo "CI OK"
